"""The seven-step meta-telescope inference pipeline (paper Section 4.2).

Given one or more vantage-day views, the pipeline classifies every
observed destination /24 into **dark** (meta-telescope prefix),
**unclean** or **gray**, applying — in the paper's order:

1. *TCP traffic*: the /24 must receive TCP at all;
2. *Average packet size*: the /24's inbound TCP mean must be <= the
   threshold (44 B);
3. *Source address unseen*: no address of the /24 may appear as a
   source (optionally forgiving up to the spoofing tolerance per /24);
4. *Private / multicast / reserved*: the /24 must be outside
   special-purpose space;
5. *Globally routed*: the /24 must sit inside a prefix announced in the
   (Route Views) routing table;
6. *Asymmetric routes*: the /24's estimated total packet rate must stay
   under the volume threshold (median across days for multi-day runs);
7. *Classification*: dark iff every observed destination IP survives
   and the block has no (unforgiven) source; unclean iff some IP
   survives, some does not, and there is no source; gray iff some IP
   survives while another sources traffic.

Since the streaming refactor this module is a thin facade: ingestion
folds views (whole, or chunk by chunk) into a mergeable
:class:`~repro.core.accum.PrefixAccumulator`, and the classification
itself lives in the :mod:`repro.core.stages` engine, one explicit
:class:`~repro.core.stages.Stage` per funnel step.  The batch and
chunked entry points below are classification-identical by
construction — they differ only in how the accumulator is fed.

Granularity note.  The paper applies filters 1, 2 and 6 "per subnet"
but classifies per IP ("all IPv4 addresses have to survive").  Taken
literally at the IP level, a single sampled 48-byte option-SYN would
taint its destination IP (mean 48 > 44) and demote every well-observed
dark block to unclean — which contradicts the paper's own telescope
coverage.  We therefore evaluate the *size and volume filters per /24*
and give the *per-IP* survival test slack up to
``ip_size_threshold`` = 48 B (the TCP-SYN-with-one-option step the
paper itself highlights): an individual address fails only when it
received no TCP at all or shows payload-bearing traffic beyond that
step.  Source sightings are always per IP.  All counts are rescaled by
each view's sampling factor before thresholds apply, mirroring how
IPFIX estimates true packet counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bgp.rib import RoutingTable
from repro.core.accum import PrefixAccumulator, accumulate_views
from repro.core.stages import (
    DEFAULT_STAGES,
    FunnelCounts,
    PipelineConfig,
    PipelineResult,
    Stage,
    StageEngine,
    StageTiming,
)
from repro.net.special import SPECIAL_PURPOSE_REGISTRY, SpecialPurposeRegistry
from repro.vantage.sampling import VantageDayView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import RunContext

__all__ = [
    "DEFAULT_STAGES",
    "FunnelCounts",
    "PipelineConfig",
    "PipelineResult",
    "Stage",
    "StageEngine",
    "StageTiming",
    "PrefixAccumulator",
    "accumulate_views",
    "run_pipeline",
    "run_pipeline_chunked",
    "run_pipeline_accumulated",
    "snapshot_from_pipeline",
]


def run_pipeline(
    views: list[VantageDayView],
    routing: RoutingTable,
    config: PipelineConfig | None = None,
    special: SpecialPurposeRegistry = SPECIAL_PURPOSE_REGISTRY,
    context: "RunContext | None" = None,
) -> PipelineResult:
    """Run the full inference over pooled vantage-day views."""
    return run_pipeline_chunked(
        views, routing, config, special=special, chunk_size=None,
        context=context,
    )


def run_pipeline_chunked(
    views: list[VantageDayView],
    routing: RoutingTable,
    config: PipelineConfig | None = None,
    special: SpecialPurposeRegistry = SPECIAL_PURPOSE_REGISTRY,
    chunk_size: int | str | None = None,
    workers: int | None = None,
    context: "RunContext | None" = None,
    kernel: str | None = None,
) -> PipelineResult:
    """Run the inference, ingesting each view in bounded-size chunks.

    ``chunk_size=None`` ingests each view as a single chunk (the batch
    path); ``"auto"`` picks a bounded size per view.  Any chunk size
    (and any worker count, and either ``kernel`` backend) yields
    bit-identical classifications.  The fold itself is planned and
    executed by :mod:`repro.core.engine` — this facade only builds the
    plan.
    """
    from repro.core.engine import ExecutionPlanner, RunContext, execute_plan

    if not views:
        raise ValueError("need at least one vantage-day view")
    if config is None:
        config = PipelineConfig()
    plan = ExecutionPlanner().plan(
        views, chunk_size=chunk_size, workers=workers, kernel=kernel
    )
    if context is None:
        context = RunContext(knobs=plan.knobs, plan=plan)
    accumulator = execute_plan(
        plan, views, context,
        ignore_sources_from_asns=config.ignore_sources_from_asns,
    )
    return run_pipeline_accumulated(
        accumulator, routing, config, special, context=context
    )


def run_pipeline_accumulated(
    accumulator: PrefixAccumulator,
    routing: RoutingTable,
    config: PipelineConfig | None = None,
    special: SpecialPurposeRegistry = SPECIAL_PURPOSE_REGISTRY,
    context: "RunContext | None" = None,
) -> PipelineResult:
    """Classify from an already-populated accumulator.

    This is the online/federation entry: the accumulator may be the
    merge of per-day partials or of other operators' contributions.
    With a :class:`~repro.core.engine.RunContext` every stage also
    lands on the observability spine as a ``stage`` event.  The stage
    masks run on the accumulator's own kernel backend, so fold and
    classification always share one backend.
    """
    if config is None:
        config = PipelineConfig()
    if accumulator.is_empty():
        raise ValueError("need at least one vantage-day view")
    if accumulator.ignore_sources_from_asns != config.ignore_sources_from_asns:
        raise ValueError(
            "accumulator was built with a different ignored-sender set "
            "than the pipeline config"
        )
    finalized = accumulator.finalize(config.spoof_tolerance)
    return StageEngine().run(
        finalized, routing, special, config, context,
        kernel=getattr(accumulator, "kernel", None),
    )


def snapshot_from_pipeline(
    result: PipelineResult,
    day: int,
    history=None,
    provenance=None,
):
    """Freeze a bare :class:`PipelineResult` into a snapshot.

    For unrefined classification (no liveness pass) the pipeline's dark
    set *is* the served set.  Facade callers should prefer
    :meth:`repro.core.metatelescope.MetaTelescopeResult.to_snapshot`,
    which additionally distinguishes refinement-removed candidates.
    """
    from repro.core.snapshot import build_snapshot

    return build_snapshot(
        day=day,
        dark=result.dark_blocks,
        unclean=result.unclean_blocks,
        gray=result.gray_blocks,
        history=history,
        provenance=provenance,
        family=result.family,
    )
