"""The seven-step meta-telescope inference pipeline (paper Section 4.2).

Given one or more vantage-day views, the pipeline classifies every
observed destination /24 into **dark** (meta-telescope prefix),
**unclean** or **gray**, applying — in the paper's order:

1. *TCP traffic*: the /24 must receive TCP at all;
2. *Average packet size*: the /24's inbound TCP mean must be <= the
   threshold (44 B);
3. *Source address unseen*: no address of the /24 may appear as a
   source (optionally forgiving up to the spoofing tolerance per /24);
4. *Private / multicast / reserved*: the /24 must be outside
   special-purpose space;
5. *Globally routed*: the /24 must sit inside a prefix announced in the
   (Route Views) routing table;
6. *Asymmetric routes*: the /24's estimated total packet rate must stay
   under the volume threshold (median across days for multi-day runs);
7. *Classification*: dark iff every observed destination IP survives
   and the block has no (unforgiven) source; unclean iff some IP
   survives, some does not, and there is no source; gray iff some IP
   survives while another sources traffic.

Granularity note.  The paper applies filters 1, 2 and 6 "per subnet"
but classifies per IP ("all IPv4 addresses have to survive").  Taken
literally at the IP level, a single sampled 48-byte option-SYN would
taint its destination IP (mean 48 > 44) and demote every well-observed
dark block to unclean — which contradicts the paper's own telescope
coverage.  We therefore evaluate the *size and volume filters per /24*
and give the *per-IP* survival test slack up to
``ip_size_threshold`` = 48 B (the TCP-SYN-with-one-option step the
paper itself highlights): an individual address fails only when it
received no TCP at all or shows payload-bearing traffic beyond that
step.  Source sightings are always per IP.  All counts are rescaled by
each view's sampling factor before thresholds apply, mirroring how
IPFIX estimates true packet counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.rib import RoutingTable
from repro.net.special import SPECIAL_PURPOSE_REGISTRY, SpecialPurposeRegistry
from repro.traffic.flows import aggregate_sums
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Tunable thresholds of the inference pipeline.

    Defaults correspond to the paper's choices translated to simulation
    units (the volume threshold scales with the world's traffic
    intensity; 44 bytes is intensity-free).
    """

    avg_size_threshold: float = 44.0
    #: Per-IP survival slack: an address fails only above this mean size
    #: (48 B = SYN with one option; see the granularity note above).
    ip_size_threshold: float = 48.0
    volume_threshold_pkts_day: float = 700.0
    #: Forgiven source packets per /24 (spoofing tolerance).  Either a
    #: per-day number, or a mapping ``vantage -> packets`` covering the
    #: whole inference window at that vantage (the paper computes the
    #: tolerance "for each vantage point and each time frame").
    spoof_tolerance: float | dict[str, float] = 0.0
    #: Sender ASes whose flows are ignored for source sightings
    #: (the BCP 38 / Spoofer-list mitigation of Section 9).
    ignore_sources_from_asns: frozenset[int] = frozenset()


@dataclass(frozen=True, slots=True)
class FunnelCounts:
    """Figure-2 funnel: /24 blocks surviving after each step."""

    observed: int
    after_tcp: int
    after_avg_size: int
    after_source_unseen: int
    after_special: int
    after_routed: int
    after_volume: int

    def as_rows(self) -> list[tuple[str, int]]:
        """(step name, surviving count) rows, in pipeline order."""
        return [
            ("observed /24 subnets", self.observed),
            ("TCP", self.after_tcp),
            ("average <= threshold bytes", self.after_avg_size),
            ("never sent a packet", self.after_source_unseen),
            ("private / reserved / multicast", self.after_special),
            ("globally routed", self.after_routed),
            ("asymmetric routing (volume)", self.after_volume),
        ]


@dataclass(frozen=True)
class PipelineResult:
    """Classification output plus diagnostics."""

    dark_blocks: np.ndarray
    unclean_blocks: np.ndarray
    gray_blocks: np.ndarray
    funnel: FunnelCounts
    #: Blocks dropped by the volume filter (step 6) among candidates.
    volume_filtered_blocks: np.ndarray
    #: Per-vantage window tolerances that were applied (packets).
    applied_tolerances: dict[str, float] = field(default_factory=dict)

    def num_dark(self) -> int:
        """Number of inferred meta-telescope prefixes."""
        return len(self.dark_blocks)


def run_pipeline(
    views: list[VantageDayView],
    routing: RoutingTable,
    config: PipelineConfig | None = None,
    special: SpecialPurposeRegistry = SPECIAL_PURPOSE_REGISTRY,
) -> PipelineResult:
    """Run the full inference over pooled vantage-day views."""
    if config is None:
        config = PipelineConfig()
    if not views:
        raise ValueError("need at least one vantage-day view")

    pooled = _PooledObservations.from_views(views, config)
    return _classify(pooled, routing, special, config)


@dataclass
class _PooledObservations:
    """Sampling-factor-weighted pooled statistics across views."""

    # per destination IP (sorted unique)
    dst_ips: np.ndarray
    ip_tcp_pkts_est: np.ndarray
    ip_tcp_bytes_est: np.ndarray
    ip_total_pkts_est: np.ndarray
    # per source IP (sorted unique), *sampled* packet counts per view-day
    # folded with the tolerance already subtracted at block level later
    src_ips: np.ndarray
    src_ip_pkts_sampled: np.ndarray
    # per destination block: estimated total pkts per day, then reduced
    # to a per-block daily median across the days present
    vol_blocks: np.ndarray
    vol_median_est: np.ndarray
    # per source block: sampled packets minus per-vantage tolerances
    src_blocks: np.ndarray
    src_block_excess: np.ndarray
    applied_tolerances: dict[str, float]

    @classmethod
    def from_views(
        cls, views: list[VantageDayView], config: PipelineConfig
    ) -> "_PooledObservations":
        ip_parts: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        src_parts: list[tuple[np.ndarray, np.ndarray]] = []
        per_day_volume: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        src_by_vantage: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
        days_by_vantage: dict[str, set[int]] = {}

        for view in views:
            agg = view.aggregates()
            factor = view.sampling_factor
            ip_parts.append(
                (
                    agg.dst_ips,
                    agg.dst_ip_tcp_packets * factor,
                    agg.dst_ip_tcp_bytes * factor,
                    agg.dst_ip_total_packets * factor,
                )
            )
            src_ips, src_pkts = _source_sightings(view, config)
            src_parts.append((src_ips, src_pkts))
            per_day_volume.setdefault(view.day, []).append(
                (agg.blocks, agg.total_packets() * factor)
            )
            blocks, (pkts,) = aggregate_sums(src_ips >> 8, src_pkts)
            src_by_vantage.setdefault(view.vantage, []).append((blocks, pkts))
            days_by_vantage.setdefault(view.vantage, set()).add(view.day)

        # Window tolerance per vantage: pollution is pooled over the
        # window and compared against one window-level allowance.
        applied: dict[str, float] = {}
        src_excess_parts: list[tuple[np.ndarray, np.ndarray]] = []
        for vantage, parts in src_by_vantage.items():
            tolerance = _tolerance_of(config, vantage, len(days_by_vantage[vantage]))
            applied[vantage] = tolerance
            blocks, (pkts,) = _merge_keyed(parts)
            src_excess_parts.append((blocks, np.maximum(pkts - tolerance, 0)))

        dst_ips, sums = _merge_keyed(
            [(p[0], p[1], p[2], p[3]) for p in ip_parts]
        )
        src_ips, src_sums = _merge_keyed([(p[0], p[1]) for p in src_parts])

        # Per-day pooled volumes, then the across-days median per block.
        days = sorted(per_day_volume)
        day_tables = []
        for day in days:
            blocks, (est,) = _merge_keyed(per_day_volume[day])
            day_tables.append((blocks, est))
        vol_blocks = np.unique(np.concatenate([b for b, _ in day_tables]))
        volume_matrix = np.zeros((len(days), len(vol_blocks)))
        for row, (blocks, est) in enumerate(day_tables):
            volume_matrix[row, np.searchsorted(vol_blocks, blocks)] = est
        vol_median_est = np.median(volume_matrix, axis=0)

        src_blocks, (src_excess,) = _merge_keyed(src_excess_parts)

        return cls(
            dst_ips=dst_ips,
            ip_tcp_pkts_est=sums[0],
            ip_tcp_bytes_est=sums[1],
            ip_total_pkts_est=sums[2],
            src_ips=src_ips,
            src_ip_pkts_sampled=src_sums[0],
            vol_blocks=vol_blocks,
            vol_median_est=vol_median_est,
            src_blocks=src_blocks,
            src_block_excess=src_excess,
            applied_tolerances=applied,
        )


def _tolerance_of(config: PipelineConfig, vantage: str, num_days: int) -> float:
    if isinstance(config.spoof_tolerance, dict):
        return config.spoof_tolerance.get(vantage, 0.0)
    # A scalar is interpreted per day and scaled to the window length.
    return float(config.spoof_tolerance) * num_days


def _source_sightings(
    view: VantageDayView, config: PipelineConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Per-source-IP sampled packet counts, minus ignored senders."""
    if not config.ignore_sources_from_asns:
        agg = view.aggregates()
        return agg.src_ips, agg.src_ip_packets
    flows = view.flows
    ignored = np.isin(
        flows.sender_asn, np.fromiter(config.ignore_sources_from_asns, dtype=np.int32)
    )
    kept = flows.filter(~ignored)
    src_ips, (pkts,) = aggregate_sums(kept.src_ip.astype(np.int64), kept.packets)
    return src_ips, pkts


def _merge_keyed(
    parts: list[tuple[np.ndarray, ...]],
) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Merge (key, value...) column groups by summing per key."""
    keys = np.concatenate([p[0] for p in parts])
    num_values = len(parts[0]) - 1
    stacked = [
        np.concatenate([p[i + 1] for p in parts]) for i in range(num_values)
    ]
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = tuple(
        np.bincount(inverse, weights=column, minlength=len(unique_keys))
        for column in stacked
    )
    return unique_keys, sums


def _classify(
    pooled: _PooledObservations,
    routing: RoutingTable,
    special: SpecialPurposeRegistry,
    config: PipelineConfig,
) -> PipelineResult:
    # ---- per-IP survival -----------------------------------------------
    has_tcp = pooled.ip_tcp_pkts_est > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        avg_size = np.where(
            has_tcp, pooled.ip_tcp_bytes_est / np.maximum(pooled.ip_tcp_pkts_est, 1), np.inf
        )
    ip_size_ok = avg_size <= config.ip_size_threshold

    # A block's sources are forgiven entirely when their pooled sampled
    # packets stay within the pooled tolerance (spoofed-noise immunity).
    blocks_with_real_sources = pooled.src_blocks[pooled.src_block_excess > 0]
    ip_is_source = np.isin(pooled.dst_ips, pooled.src_ips) & np.isin(
        pooled.dst_ips >> 8, blocks_with_real_sources
    )

    # Per-IP evidence: an address *survives* when its TCP looks like
    # IBR and it never sources; it *fails* when it shows payload-
    # bearing TCP or sources traffic.  UDP-only addresses carry no TCP
    # evidence either way and stay neutral.
    survives = has_tcp & ip_size_ok & ~ip_is_source
    fails = (has_tcp & ~ip_size_ok) | ip_is_source

    ip_blocks = pooled.dst_ips >> 8
    blocks = np.unique(ip_blocks)
    position = np.searchsorted(blocks, ip_blocks)
    num_blocks = len(blocks)

    def per_block_any(mask: np.ndarray) -> np.ndarray:
        out = np.zeros(num_blocks, dtype=bool)
        np.logical_or.at(out, position, mask)
        return out

    def per_block_sum(values: np.ndarray) -> np.ndarray:
        return np.bincount(position, weights=values, minlength=num_blocks)

    # ---- block-level size fingerprint (steps 1-2) ------------------------
    block_tcp_pkts = per_block_sum(pooled.ip_tcp_pkts_est)
    block_tcp_bytes = per_block_sum(pooled.ip_tcp_bytes_est)
    block_any_tcp = block_tcp_pkts > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        block_avg = np.where(
            block_any_tcp, block_tcp_bytes / np.maximum(block_tcp_pkts, 1), np.inf
        )
    block_size_ok = block_avg <= config.avg_size_threshold

    block_any_survivor = per_block_any(survives)
    block_any_failed = per_block_any(fails)

    block_has_source = np.isin(blocks, blocks_with_real_sources)

    # ---- block-level filters (steps 4-6) ------------------------------
    not_special = ~special.special_mask(blocks)
    routed = routing.routed_mask(blocks)
    volume_est = np.zeros(num_blocks)
    vol_pos = np.searchsorted(pooled.vol_blocks, blocks)
    vol_pos = np.clip(vol_pos, 0, max(len(pooled.vol_blocks) - 1, 0))
    if len(pooled.vol_blocks):
        hit = pooled.vol_blocks[vol_pos] == blocks
        volume_est[hit] = pooled.vol_median_est[vol_pos[hit]]
    volume_ok = volume_est <= config.volume_threshold_pkts_day

    # ---- funnel (Figure 2) -------------------------------------------
    step_tcp = block_any_tcp
    step_avg = step_tcp & block_size_ok
    step_source = step_avg & block_any_survivor
    step_special = step_source & not_special
    step_routed = step_special & routed
    step_volume = step_routed & volume_ok
    funnel = FunnelCounts(
        observed=num_blocks,
        after_tcp=int(step_tcp.sum()),
        after_avg_size=int(step_avg.sum()),
        after_source_unseen=int(step_source.sum()),
        after_special=int(step_special.sum()),
        after_routed=int(step_routed.sum()),
        after_volume=int(step_volume.sum()),
    )

    # ---- classification (step 7) --------------------------------------
    candidates = step_volume
    dark = candidates & ~block_has_source & ~block_any_failed
    gray = candidates & block_has_source
    unclean = candidates & ~block_has_source & block_any_failed

    return PipelineResult(
        dark_blocks=blocks[dark],
        unclean_blocks=blocks[unclean],
        gray_blocks=blocks[gray],
        funnel=funnel,
        volume_filtered_blocks=blocks[step_routed & ~volume_ok],
        applied_tolerances=pooled.applied_tolerances,
    )
