"""Delta persistence for classification snapshots.

A serving fleet republishes snapshots many times a day, but between two
consecutive publishes only a handful of /24s actually change verdict —
persisting the full table per publish makes the year-scale archive cost
O(classified blocks × publishes).  A :class:`SnapshotDeltaStore` stores
one **full** base snapshot plus one flowpack segment of *row deltas*
per publish, so the archive grows O(changed /24s) per publish while
still reconstructing **any retained version bit-identically** —
columns, day, version and provenance included.

Layout (all writes atomic via temp file + ``os.replace``)::

    <root>/base.fpk       full snapshot of the oldest retained version
                          (the standard ``snapshot.fpk`` table kind)
    <root>/deltas.fpk     generic flowpack table archive; one segment
                          per publish, rows are upserts/deletes
    <root>/manifest.json  version -> (day, provenance, segment) index

A delta row is the full new column tuple of a block that appeared or
changed (``op=1``, upsert) or a bare block id that disappeared
(``op=2``, delete).  Reconstruction replays segments in publish order
on top of the base arrays; because every surviving row's bytes come
either from the base archive or from the delta segment that last wrote
it, the replayed snapshot is bit-identical to what was published.

**Compaction** bounds replay cost and archive size: once the
accumulated delta rows exceed ``compact_threshold`` times the size of
the latest snapshot, the store rewrites ``base.fpk`` as the current
snapshot and truncates the delta log.  Compaction narrows the retained
window to the compacted version — exactly like the serving handle's
bounded history, the deep past must come from colder storage.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.snapshot import (
    SNAPSHOT_COLUMNS,
    ClassificationSnapshot,
)
from repro.flowpack import (
    TableArchive,
    append_table_columns,
    write_table_archive,
)

#: Delta-row operations.
OP_UPSERT = 1
OP_DELETE = 2

#: Schema of one ``deltas.fpk`` segment: the snapshot columns plus the
#: operation code.  Delete rows carry only a meaningful ``blocks``
#: value (the other columns are zero-filled).
DELTA_COLUMNS = {"op": np.dtype(np.uint8), **SNAPSHOT_COLUMNS}

#: Archive-kind tag in the delta archive's header meta.
DELTA_KIND = "classification-snapshot-deltas"

_MANIFEST_VERSION = 1


class SnapshotStoreError(ValueError):
    """A structurally damaged or misused snapshot store."""


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _row_delta(
    prev: ClassificationSnapshot, new: ClassificationSnapshot
) -> dict[str, np.ndarray]:
    """The upsert/delete rows that turn ``prev``'s table into ``new``'s.

    Upserts are blocks that are new or whose row differs in *any*
    column; deletes are blocks no longer present.  Both sides are
    sorted by block id, so the delta is deterministic.
    """
    removed = np.setdiff1d(prev.blocks, new.blocks)
    # A row is an upsert when it is absent from prev OR any column
    # differs.  Compare aligned views of the common blocks.
    common = np.intersect1d(new.blocks, prev.blocks)
    new_idx = new.indices_of(common)
    prev_idx = prev.indices_of(common)
    changed_mask = np.zeros(len(common), dtype=bool)
    for name in SNAPSHOT_COLUMNS:
        if name == "blocks":
            continue
        changed_mask |= (
            getattr(new, name)[new_idx] != getattr(prev, name)[prev_idx]
        )
    upsert_blocks = np.union1d(
        np.setdiff1d(new.blocks, prev.blocks), common[changed_mask]
    )
    up_idx = new.indices_of(upsert_blocks)

    ops = np.concatenate([
        np.full(len(removed), OP_DELETE, dtype=np.uint8),
        np.full(len(upsert_blocks), OP_UPSERT, dtype=np.uint8),
    ])
    arrays: dict[str, np.ndarray] = {"op": ops}
    for name, dtype in SNAPSHOT_COLUMNS.items():
        if name == "blocks":
            arrays[name] = np.concatenate([
                removed, upsert_blocks
            ]).astype(np.int64)
            continue
        filler = np.zeros(len(removed), dtype=dtype)
        arrays[name] = np.concatenate([
            filler, getattr(new, name)[up_idx].astype(dtype)
        ])
    return arrays


def _apply_delta(
    arrays: dict[str, np.ndarray], delta: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Replay one delta segment onto snapshot column arrays."""
    ops = delta["op"]
    touched = np.asarray(delta["blocks"], dtype=np.int64)
    upsert_mask = ops == OP_UPSERT
    # Every touched block leaves the previous table; upserts re-enter
    # with their new row.  searchsorted keeps the merge O(n log n) and
    # the result sorted (snapshot invariant).
    keep = ~np.isin(arrays["blocks"], touched)
    merged: dict[str, np.ndarray] = {}
    order = None
    for name, dtype in SNAPSHOT_COLUMNS.items():
        column = np.concatenate([
            arrays[name][keep],
            np.asarray(delta[name])[upsert_mask].astype(dtype),
        ])
        if name == "blocks":
            order = np.argsort(column, kind="stable")
        merged[name] = column
    return {name: column[order] for name, column in merged.items()}


class SnapshotDeltaStore:
    """Append-only snapshot archive: one full base + per-publish deltas.

    ``compact_threshold`` is the delta-rows-to-snapshot-rows ratio that
    triggers compaction (``None`` disables it); ``0`` compacts on every
    publish, which degenerates to full-snapshot storage.
    """

    def __init__(
        self,
        root: str | Path,
        compact_threshold: float | None = 4.0,
    ) -> None:
        if compact_threshold is not None and compact_threshold < 0:
            raise ValueError("compact_threshold must be >= 0 or None")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compact_threshold = compact_threshold
        self.compactions = 0
        self._latest: ClassificationSnapshot | None = None
        manifest = self._read_manifest()
        if manifest is not None:
            self.compactions = int(manifest.get("compactions", 0))
            self._latest = self._reconstruct(manifest, None)

    # -- paths & manifest ----------------------------------------------

    @property
    def base_path(self) -> Path:
        return self.root / "base.fpk"

    @property
    def deltas_path(self) -> Path:
        return self.root / "deltas.fpk"

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def _read_manifest(self) -> dict[str, Any] | None:
        if not self.manifest_path.exists():
            return None
        manifest = json.loads(self.manifest_path.read_text())
        if manifest.get("manifest_version") != _MANIFEST_VERSION:
            raise SnapshotStoreError(
                f"{self.manifest_path}: unsupported manifest version "
                f"{manifest.get('manifest_version')!r}"
            )
        return manifest

    def _require_manifest(self) -> dict[str, Any]:
        manifest = self._read_manifest()
        if manifest is None:
            raise SnapshotStoreError(f"{self.root}: empty snapshot store")
        return manifest

    def _write_manifest(self, manifest: dict[str, Any]) -> None:
        manifest["manifest_version"] = _MANIFEST_VERSION
        manifest["compactions"] = self.compactions
        _atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=2) + "\n"
        )

    # -- the write path ------------------------------------------------

    def append(self, snapshot: ClassificationSnapshot) -> None:
        """Persist one published snapshot (monotone version required).

        The first append writes the full base; every later one appends
        a delta segment of O(changed /24s) rows, then compacts if the
        accumulated deltas crossed the threshold.
        """
        if snapshot.version < 1:
            raise SnapshotStoreError(
                "only published snapshots (version >= 1) can be stored"
            )
        manifest = self._read_manifest()
        if manifest is None:
            self._write_base(snapshot)
            self._latest = snapshot
            return
        latest = self._latest
        if latest is None:  # store reopened without replayable state
            latest = self._reconstruct(manifest, None)
        if snapshot.version <= latest.version:
            raise SnapshotStoreError(
                f"store already holds version {latest.version}; "
                f"cannot append version {snapshot.version}"
            )
        delta = _row_delta(latest, snapshot)
        entry = {
            "version": int(snapshot.version),
            "day": int(snapshot.day),
            "rows": int(len(delta["op"])),
            "provenance": dict(snapshot.provenance),
            "segment": None,
        }
        if entry["rows"]:
            if not self.deltas_path.exists():
                write_table_archive(
                    {
                        name: np.empty(0, dtype=dtype)
                        for name, dtype in DELTA_COLUMNS.items()
                    },
                    self.deltas_path,
                    meta={"kind": DELTA_KIND},
                )
            archive = TableArchive(
                self.deltas_path, expected_columns=DELTA_COLUMNS
            )
            entry["segment"] = len(archive.segments)
            append_table_columns(delta, self.deltas_path)
        manifest["deltas"].append(entry)
        self._write_manifest(manifest)
        self._latest = snapshot
        if (
            self.compact_threshold is not None
            and self._delta_rows(manifest) > self.compact_threshold
            * max(len(snapshot), 1)
        ):
            self.compact()

    def _write_base(self, snapshot: ClassificationSnapshot) -> None:
        tmp = self.base_path.with_name(self.base_path.name + ".tmp")
        snapshot.save(tmp)
        os.replace(tmp, self.base_path)
        if self.deltas_path.exists():
            self.deltas_path.unlink()
        self._write_manifest(
            {
                "base": {
                    "version": int(snapshot.version),
                    "day": int(snapshot.day),
                    "rows": int(len(snapshot)),
                },
                "deltas": [],
            }
        )

    def compact(self) -> None:
        """Fold all deltas into a new base (narrows retention to now)."""
        latest = self.load()
        self.compactions += 1
        self._write_base(latest)
        self._latest = latest

    @staticmethod
    def _delta_rows(manifest: dict[str, Any]) -> int:
        return sum(entry["rows"] for entry in manifest["deltas"])

    # -- the read path -------------------------------------------------

    def versions(self) -> list[int]:
        """Retained versions, oldest first (empty store: ``[]``)."""
        manifest = self._read_manifest()
        if manifest is None:
            return []
        return [manifest["base"]["version"]] + [
            entry["version"] for entry in manifest["deltas"]
        ]

    def load(self, version: int | None = None) -> ClassificationSnapshot:
        """Reconstruct a retained version (default: the latest).

        The result is bit-identical to the snapshot that was appended:
        same columns, day, version and provenance.
        """
        manifest = self._require_manifest()
        if version is not None and version not in self.versions():
            raise SnapshotStoreError(
                f"version {version} not retained (have {self.versions()})"
            )
        return self._reconstruct(manifest, version)

    def _reconstruct(
        self, manifest: dict[str, Any], version: int | None
    ) -> ClassificationSnapshot:
        base = ClassificationSnapshot.open(self.base_path)
        if version is not None and version == manifest["base"]["version"]:
            return base
        arrays = {
            name: np.asarray(column)
            for name, column in base.arrays().items()
        }
        day, snapshot_version = base.day, base.version
        provenance: Mapping[str, Any] = base.provenance
        archive = (
            TableArchive(self.deltas_path, expected_columns=DELTA_COLUMNS)
            if self.deltas_path.exists()
            else None
        )
        for entry in manifest["deltas"]:
            if version is not None and entry["version"] > version:
                break
            if entry["rows"]:
                if archive is None:
                    raise SnapshotStoreError(
                        f"{self.deltas_path}: missing delta archive"
                    )
                delta = archive.segment_arrays(entry["segment"])
                arrays = _apply_delta(arrays, delta)
            day, snapshot_version = entry["day"], entry["version"]
            provenance = entry["provenance"]
        return ClassificationSnapshot(
            day=day,
            version=snapshot_version,
            provenance=dict(provenance),
            **arrays,
        )

    # -- accounting ----------------------------------------------------

    def total_bytes(self) -> int:
        """On-disk footprint of base + deltas (manifest excluded)."""
        return sum(
            path.stat().st_size
            for path in (self.base_path, self.deltas_path)
            if path.exists()
        )

    def describe(self) -> dict[str, Any]:
        """Store shape for benchmarks and the CLI."""
        manifest = self._read_manifest()
        if manifest is None:
            return {"versions": 0, "bytes": 0, "delta_rows": 0,
                    "compactions": self.compactions}
        return {
            "versions": len(self.versions()),
            "base_version": manifest["base"]["version"],
            "base_rows": manifest["base"]["rows"],
            "delta_rows": self._delta_rows(manifest),
            "bytes": self.total_bytes(),
            "compactions": self.compactions,
        }
