"""Process-pool execution engine for vantage-day aggregation.

Per-vantage-day aggregation is embarrassingly parallel, and since the
streaming refactor every aggregate flows through the associative
:meth:`~repro.core.accum.PrefixAccumulator.merge`.  This module fans
the fold out the way a data-parallel training stack does:

1. **Shard** — :func:`shard_views` splits ``list[VantageDayView]`` work
   per view, cutting oversized views into row-range shards, and packs
   the shards into one balanced bucket per worker (longest-processing-
   time-first, deterministic);
2. **Fan out** — each worker folds its bucket into a partial
   :class:`~repro.core.accum.PrefixAccumulator` and ships the compact
   columnar wire form (:meth:`~repro.core.accum.PrefixAccumulator.
   to_state`) back — raw numpy arrays, never log-structured parts;
3. **Reduce** — the coordinator decodes the partials and
   :func:`tree_merge`\\ s them pairwise.

Because every count the accumulator tracks is an integer (exact in
float64), the fold is associative and commutative: **any** worker
count, shard order or merge grouping classifies bit-identically to the
serial path.  ``workers`` <= 1 short-circuits to the serial fold, so
existing behaviour and determinism guarantees are untouched by default.

When every view is archive-backed (exposes ``slice_ref``), the fold
runs on a **persistent worker pool**: the pool is created once per
process count and reused across calls — chunks, days, rolling windows
— instead of re-forking per fold, and shards travel as picklable
(path, row-range) descriptors; each worker opens the flowpack memmap
itself and folds its assigned row range straight off the page cache,
so no flow payload ever crosses the pipe.  Re-forking per call was
the parallel engine's dominant overhead (IPC-bound ``agg_speedup``
< 1 in the pipeline benchmark); descriptor entries make pool reuse
safe because nothing depends on fork-time copy-on-write state.

In-memory views cannot ship as descriptors, so they keep the one-shot
path: under ``fork`` the views are inherited copy-on-write and only
shard indices cross the pipe; under ``spawn`` the shard payloads are
pickled across.  Per-worker wall time, IPC overhead and merge time
are reported as :class:`~repro.core.stages.StageTiming` rows, folding
into the existing stage-timing observability.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.accum import (
    PrefixAccumulator,
    accumulate_views,
    resolve_chunk_size,
)
from repro.core.engine import default_workers, resolve_execution_knobs
from repro.core.stages import StageTiming
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView

__all__ = [
    "Shard",
    "ParallelStats",
    "WorkerReport",
    "default_workers",
    "parallel_accumulate_views",
    "partial_states_identical",
    "shard_views",
    "shutdown_worker_pools",
    "tree_merge",
]

#: A shard: (view index, first row, one-past-last row).
Shard = tuple[int, int, int]

#: Work inherited by forked workers (views, ignored ASNs, chunk size,
#: kernel name).
_FORK_WORK: tuple[
    list[VantageDayView], frozenset[int], int | str | None, str | None
] | None = None

#: Persistent pools, keyed by process count (descriptor entries only —
#: nothing a pooled worker runs depends on fork-time state).
_POOLS: dict[int, Any] = {}


def _persistent_pool(processes: int):
    """The reusable pool for ``processes`` workers (created on demand)."""
    pool = _POOLS.get(processes)
    if pool is None:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        pool = multiprocessing.get_context(method).Pool(processes=processes)
        _POOLS[processes] = pool
    return pool


def shutdown_worker_pools() -> None:
    """Terminate every persistent worker pool (tests; process exit)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_worker_pools)


@dataclass(frozen=True, slots=True)
class WorkerReport:
    """One worker's contribution to a parallel fold."""

    index: int
    shards: int
    rows: int
    #: Wall time of the worker's fold (inside the worker process).
    fold_seconds: float
    #: Wall time spent encoding the partial into its wire form.
    encode_seconds: float


@dataclass(frozen=True)
class ParallelStats:
    """Observability record of one parallel (or serial) fold."""

    workers: int
    #: ``"serial"``, ``"pool"`` (persistent pool over archive
    #: descriptors), ``"fork"`` or ``"spawn"``.
    mode: str
    #: Wall time of the whole fan-out phase (pool included).
    fanout_seconds: float
    #: Coordinator-side wall time decoding worker wire states.
    decode_seconds: float
    #: Coordinator-side wall time tree-merging the partials.
    merge_seconds: float
    partials: int
    reports: tuple[WorkerReport, ...]

    def busy_seconds(self) -> float:
        """Summed in-worker fold time (the parallelised work)."""
        return sum(report.fold_seconds for report in self.reports)

    def ipc_seconds(self) -> float:
        """Wire-form encode plus decode time (the IPC overhead)."""
        return self.decode_seconds + sum(
            report.encode_seconds for report in self.reports
        )

    def balance(self) -> float:
        """Busy time over ``workers x`` the slowest worker (1.0 = even)."""
        slowest = max(
            (report.fold_seconds for report in self.reports), default=0.0
        )
        if slowest <= 0.0 or not self.reports:
            return 1.0
        return self.busy_seconds() / (len(self.reports) * slowest)

    def stage_timings(self) -> tuple[StageTiming, ...]:
        """Per-worker / IPC / merge rows for the stage-timing tables."""
        timings = [
            StageTiming(f"fanout[w{report.index}]", report.fold_seconds,
                        report.rows)
            for report in self.reports
        ]
        timings.append(StageTiming("ipc", self.ipc_seconds(), self.partials))
        timings.append(StageTiming("merge", self.merge_seconds, self.partials))
        return tuple(timings)


def shard_views(
    views: Sequence[VantageDayView],
    workers: int,
    max_shard_rows: int | None = None,
) -> list[list[Shard]]:
    """Deterministic balanced buckets of (view, row-range) shards.

    Each view becomes one shard, except views larger than
    ``max_shard_rows`` (default: an even split of the total rows across
    workers), which are cut into row ranges — so a single giant
    vantage-day cannot serialise the fold.  Shards are packed
    longest-first onto the least-loaded bucket (LPT), ties resolved by
    original order, so the same input always yields the same buckets.
    Empty views still produce a shard: observing a silent vantage-day
    must reach the accumulator no matter which worker holds it.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    total_rows = sum(_view_rows(view) for view in views)
    if max_shard_rows is None:
        max_shard_rows = max(1, -(-total_rows // workers))
    if max_shard_rows < 1:
        raise ValueError(f"max_shard_rows must be >= 1: {max_shard_rows}")
    shards: list[Shard] = []
    for index, view in enumerate(views):
        rows = _view_rows(view)
        if rows == 0:
            shards.append((index, 0, 0))
            continue
        for start in range(0, rows, max_shard_rows):
            shards.append((index, start, min(start + max_shard_rows, rows)))

    buckets: list[list[Shard]] = [[] for _ in range(workers)]
    loads = [0] * workers
    for shard in sorted(
        shards, key=lambda shard: shard[2] - shard[1], reverse=True
    ):
        target = loads.index(min(loads))
        buckets[target].append(shard)
        loads[target] += shard[2] - shard[1]
    return [sorted(bucket) for bucket in buckets if bucket]


def tree_merge(
    partials: Sequence[PrefixAccumulator], copy: bool = False
) -> PrefixAccumulator:
    """Pairwise (tree) reduction of partial accumulators.

    Merging is associative, so the tree shape changes nothing about the
    result — it bounds the size imbalance between merge operands, the
    same reason training stacks all-reduce in trees.  With ``copy`` the
    inputs are left untouched; otherwise the leftmost partial of each
    pair absorbs its sibling in place.
    """
    if not partials:
        raise ValueError("need at least one partial accumulator")
    level = [
        partial.copy() if copy else partial for partial in partials
    ]
    for partial in level:
        partial.compact()
    while len(level) > 1:
        merged: list[PrefixAccumulator] = []
        for left in range(0, len(level), 2):
            if left + 1 < len(level):
                level[left].merge(level[left + 1])
            merged.append(level[left])
        level = merged
    return level[0]


def _slice_table(flows: FlowTable, start: int, stop: int) -> FlowTable:
    """Zero-copy row-range slice of a flow table."""
    if start == 0 and stop >= len(flows):
        return flows
    return flows.slice_rows(start, stop)


def _view_rows(view: VantageDayView) -> int:
    """A view's row count without materialising archive-backed flows."""
    rows = getattr(view, "num_rows", None)
    return len(view.flows) if rows is None else rows


def _shard_payload(view: VantageDayView, start: int, stop: int):
    """What a worker receives for one shard of ``view``.

    Archive-backed views hand out a picklable ``ArchiveSlice`` — the
    worker opens the memmap itself and reads only its row range, so
    the payload crossing the pipe (or surviving the fork) is a path
    plus two integers.  In-memory views slice zero-copy as before.
    """
    slice_ref = getattr(view, "slice_ref", None)
    if slice_ref is not None:
        return slice_ref(start, stop)
    return _slice_table(view.flows, start, stop)


def _fold_entries(
    entries: list[tuple[str, int, float, object]],
    ignored: frozenset[int],
    chunk_size: int | str | None,
    kernel: str | None,
) -> tuple[dict, int, int, float, float]:
    """Fold shard entries into a partial; return its wire state + stats.

    An entry's payload is either a :class:`FlowTable` or a lazy
    reference with a ``load()`` method (an archive slice); loading in
    here means the rows first exist inside the worker doing the fold.
    ``kernel`` is the resolved backend *name* — each worker resolves
    its own backend instance (compiled libraries don't pickle).
    """
    started = time.perf_counter()
    accumulator = PrefixAccumulator(ignored, kernel=kernel)
    rows = 0
    for vantage, day, sampling_factor, payload in entries:
        flows = payload.load() if hasattr(payload, "load") else payload
        rows += len(flows)
        accumulator.observe(vantage, day)
        resolved = resolve_chunk_size(chunk_size, len(flows))
        for chunk in flows.iter_chunks(resolved):
            accumulator.update(
                chunk, vantage=vantage, day=day,
                sampling_factor=sampling_factor,
            )
    fold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    state = accumulator.to_state()
    encode_seconds = time.perf_counter() - started
    return state, len(entries), rows, fold_seconds, encode_seconds


def _fold_fork_bucket(bucket: list[Shard]):
    """Worker entry under ``fork``: views come in via copy-on-write."""
    views, ignored, chunk_size, kernel = _FORK_WORK
    entries = [
        (
            views[index].vantage,
            views[index].day,
            views[index].sampling_factor,
            _shard_payload(views[index], start, stop),
        )
        for index, start, stop in bucket
    ]
    return _fold_entries(entries, ignored, chunk_size, kernel)


def _fold_payload_bucket(
    entries: list[tuple[str, int, float, FlowTable]],
    ignored: frozenset[int],
    chunk_size: int | str | None,
    kernel: str | None = None,
):
    """Worker entry for pickled shard entries (persistent pool; spawn)."""
    return _fold_entries(entries, ignored, chunk_size, kernel)


def parallel_accumulate_views(
    views: Sequence[VantageDayView],
    ignore_sources_from_asns: frozenset[int] = frozenset(),
    *,
    workers: int | None = None,
    chunk_size: int | str | None = None,
    max_shard_rows: int | None = None,
    buckets: list[list[Shard]] | None = None,
    kernel: str | None = None,
) -> tuple[PrefixAccumulator, ParallelStats]:
    """Fold views into one accumulator across a process pool.

    ``workers=None``/``1`` runs the serial fold unchanged; ``0`` means
    one worker per available CPU (knobs resolve through the engine's
    :func:`~repro.core.engine.resolve_execution_knobs`, the single
    resolution point).  ``buckets`` lets an
    :class:`~repro.core.engine.ExecutionPlan` supply its precomputed
    shard layout; otherwise :func:`shard_views` derives it here.
    ``kernel`` names the fold backend each worker resolves locally
    (compiled kernels don't pickle, so the *name* crosses the pipe).
    The merged accumulator is bit-identical to ``accumulate_views`` for
    any worker count — aggregation is exact-integer associative — so
    callers may treat the knob as pure throughput tuning.

    When every view is archive-backed the shards go out as (path,
    row-range) descriptors over the persistent pool; otherwise the
    one-shot fork/spawn path carries the in-memory payloads.
    """
    global _FORK_WORK
    workers = resolve_execution_knobs(workers=workers).workers
    views = list(views)
    if workers <= 1 or len(views) == 0:
        started = time.perf_counter()
        accumulator = accumulate_views(
            views,
            ignore_sources_from_asns=ignore_sources_from_asns,
            chunk_size=chunk_size,
            kernel=kernel,
        )
        elapsed = time.perf_counter() - started
        report = WorkerReport(
            index=0, shards=len(views),
            rows=sum(_view_rows(view) for view in views),
            fold_seconds=elapsed, encode_seconds=0.0,
        )
        return accumulator, ParallelStats(
            workers=1, mode="serial", fanout_seconds=elapsed,
            decode_seconds=0.0, merge_seconds=0.0, partials=1,
            reports=(report,),
        )

    ignored = frozenset(ignore_sources_from_asns)
    if buckets is None:
        buckets = shard_views(views, workers, max_shard_rows)
    all_descriptor = all(
        getattr(view, "slice_ref", None) is not None for view in views
    )
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    started = time.perf_counter()
    if all_descriptor:
        # Archive-backed: descriptor entries are tiny and carry no
        # process state, so the persistent pool folds them safely.
        payloads = [
            (
                [
                    (
                        views[index].vantage,
                        views[index].day,
                        views[index].sampling_factor,
                        _shard_payload(views[index], start, stop),
                    )
                    for index, start, stop in bucket
                ],
                ignored,
                chunk_size,
                kernel,
            )
            for bucket in buckets
        ]
        pool = _persistent_pool(len(buckets))
        results = pool.starmap(_fold_payload_bucket, payloads)
        mode = "pool"
    elif use_fork:
        context = multiprocessing.get_context("fork")
        _FORK_WORK = (views, ignored, chunk_size, kernel)
        try:
            with context.Pool(processes=len(buckets)) as pool:
                results = pool.map(_fold_fork_bucket, buckets)
        finally:
            _FORK_WORK = None
        mode = "fork"
    else:  # pragma: no cover - exercised only on spawn-only platforms
        context = multiprocessing.get_context("spawn")
        payloads = [
            (
                [
                    (
                        views[index].vantage,
                        views[index].day,
                        views[index].sampling_factor,
                        _shard_payload(views[index], start, stop),
                    )
                    for index, start, stop in bucket
                ],
                ignored,
                chunk_size,
                kernel,
            )
            for bucket in buckets
        ]
        with context.Pool(processes=len(buckets)) as pool:
            results = pool.starmap(_fold_payload_bucket, payloads)
        mode = "spawn"
    fanout_seconds = time.perf_counter() - started

    started = time.perf_counter()
    partials = [
        PrefixAccumulator.from_state(state, kernel=kernel)
        for state, *_ in results
    ]
    decode_seconds = time.perf_counter() - started

    started = time.perf_counter()
    merged = tree_merge(partials)
    merge_seconds = time.perf_counter() - started

    reports = tuple(
        WorkerReport(
            index=index, shards=shards, rows=rows,
            fold_seconds=fold_seconds, encode_seconds=encode_seconds,
        )
        for index, (_, shards, rows, fold_seconds, encode_seconds) in enumerate(
            results
        )
    )
    stats = ParallelStats(
        workers=len(buckets),
        mode=mode,
        fanout_seconds=fanout_seconds,
        decode_seconds=decode_seconds,
        merge_seconds=merge_seconds,
        partials=len(partials),
        reports=reports,
    )
    return merged, stats


def partial_states_identical(a: PrefixAccumulator, b: PrefixAccumulator) -> bool:
    """True when two accumulators carry bit-identical aggregates.

    Compares the compacted wire forms column by column — the strongest
    equivalence short of classifying: identical states finalize (and
    therefore classify) identically under any configuration.
    """
    state_a, state_b = a.to_state(), b.to_state()
    if state_a.keys() != state_b.keys():
        return False
    for key, value_a in state_a.items():
        value_b = state_b[key]
        if isinstance(value_a, dict):
            if value_a.keys() != value_b.keys():
                return False
            for inner, columns_a in value_a.items():
                if not _columns_equal(columns_a, value_b[inner]):
                    return False
        elif isinstance(value_a, tuple) and value_a and isinstance(
            value_a[0], np.ndarray
        ):
            if not _columns_equal(value_a, value_b):
                return False
        elif value_a != value_b:
            return False
    return True


def _columns_equal(a, b) -> bool:
    if isinstance(a, tuple) and a and isinstance(a[0], np.ndarray):
        return len(a) == len(b) and all(
            np.array_equal(col_a, col_b) for col_a, col_b in zip(a, b)
        )
    return a == b
