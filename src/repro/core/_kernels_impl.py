"""Numba-compatible kernel implementations (plain-Python loops).

This module is the **algorithm source** for the native backend's Numba
provider: every function here is written in the nopython-jittable
subset and mirrors ``_kernels.c`` operation for operation, so the C
(ctypes) provider, the Numba provider and the unjitted Python form all
produce identical bits.  The test suite drives these functions *unjitted*
(slow, small inputs), which is what gates the Numba leg's correctness
even on machines without Numba installed.

Identity contract: per-key sums accumulate in original row order and
parts merge left-to-right — exactly the float operation order of the
``np.unique`` + ``np.bincount`` reference (see docs/architecture.md
§12).

All outputs are caller-preallocated; functions return counts (or a
negative status for "fall back to the reference path").
"""

from __future__ import annotations

import numpy as np

DIRECT_BITS = 13
DIRECT_SLOTS = 1 << DIRECT_BITS
DIRECT_MASK = DIRECT_SLOTS - 1
RADIX_BITS = 11
MAX_PASS_BITS = 13

_PROTO_TCP = 6
_I32_MAX = 2**31 - 1
_I32_MIN = -(2**31)


def _bits_of(value):
    bits = 0
    while (value >> bits) != 0:
        bits += 1
    return bits


def _sorted_slots(seen, touched, nt, smin, smax):
    """Order the touched slots ascending, in place.

    Sparse windows insertion-sort the touched list; dense windows scan
    the [smin, smax] span instead (every touched slot has seen == 1).
    """
    if nt * nt < smax - smin + 1:
        for i in range(1, nt):
            slot = touched[i]
            j = i - 1
            while j >= 0 and touched[j] > slot:
                touched[j + 1] = touched[j]
                j -= 1
            touched[j + 1] = slot
    else:
        t = 0
        for s in range(smin, smax + 1):
            if seen[s] != 0:
                touched[t] = s
                t += 1


def _pass_plan(bits):
    """Split ``bits`` into 1-3 stable LSD passes of <= MAX_PASS_BITS."""
    if bits <= MAX_PASS_BITS:
        npass = 1
    elif bits <= 2 * MAX_PASS_BITS:
        npass = 2
    else:
        npass = 3
    base = bits // npass
    rem = bits - base * npass
    w0 = base + (1 if rem > 0 else 0)
    w1 = base + (1 if rem > 1 else 0)
    w2 = base
    return npass, w0, w1, w2


def fold3_impl(
    keys, proto, packets, bytes_, factor, block_shift,
    out_keys, out_a, out_b, out_c,
    blk_keys, blk_vals,
    key_a, pktcp_a, by_a, key_b, pktcp_b, by_b,
    counts,
):
    """Grouped (tcp pkts, tcp bytes, total pkts) per dst key + block regroup.

    Full stable LSD radix sort of (key offset, pk|tcp-sign, bytes)
    records, then a branchless segmented reduce accumulating unscaled
    float64 sums in original row order; ``factor`` is applied once at
    the end — the numpy reference's operation order.  ``block_shift``
    is the family's key-to-block shift (8 for IPv4).  counts = [nu,
    nblk]; returns -1 on a 31-bit value overflow (caller falls back).
    """
    n = len(keys)
    counts[0] = 0
    counts[1] = 0
    if n == 0:
        return 0
    kmin = np.int64(keys[0])
    kmax = np.int64(keys[0])
    for i in range(n):
        k = np.int64(keys[i])
        if k < kmin:
            kmin = k
        if k > kmax:
            kmax = k
        if packets[i] >= _I32_MAX or bytes_[i] >= _I32_MAX:
            return -1
        if packets[i] < 0 or bytes_[i] < 0:
            return -1
    bits = _bits_of(kmax - kmin)
    npass, w0, w1, w2 = _pass_plan(bits)

    h0 = np.zeros(1 << w0, dtype=np.int64)
    h1 = np.zeros((1 << w1) if npass > 1 else 1, dtype=np.int64)
    h2 = np.zeros((1 << w2) if npass > 2 else 1, dtype=np.int64)
    m0 = np.int64((1 << w0) - 1)
    m1 = np.int64((1 << w1) - 1)
    for i in range(n):
        u = np.int64(keys[i]) - kmin
        h0[u & m0] += 1
        if npass > 1:
            h1[(u >> w0) & m1] += 1
        if npass > 2:
            h2[u >> (w0 + w1)] += 1
    run = np.int64(0)
    for b in range(len(h0)):
        count = h0[b]
        h0[b] = run
        run += count
    if npass > 1:
        run = np.int64(0)
        for b in range(len(h1)):
            count = h1[b]
            h1[b] = run
            run += count
    if npass > 2:
        run = np.int64(0)
        for b in range(len(h2)):
            count = h2[b]
            h2[b] = run
            run += count

    # Pass 1 scatters records straight from the input columns; the TCP
    # flag rides in the sign bit of the packet field.
    for i in range(n):
        u = np.int64(keys[i]) - kmin
        pos = h0[u & m0]
        h0[u & m0] = pos + 1
        key_a[pos] = u
        pktcp = np.int32(packets[i])
        if proto[i] == _PROTO_TCP:
            pktcp = np.int32(pktcp | _I32_MIN)
        pktcp_a[pos] = pktcp
        by_a[pos] = np.int32(bytes_[i])
    rkey, rpktcp, rby = key_a, pktcp_a, by_a
    if npass > 1:
        for i in range(n):
            u = np.int64(key_a[i])
            d = (u >> w0) & m1
            pos = h1[d]
            h1[d] = pos + 1
            key_b[pos] = u
            pktcp_b[pos] = pktcp_a[i]
            by_b[pos] = by_a[i]
        rkey, rpktcp, rby = key_b, pktcp_b, by_b
    if npass > 2:
        shift = w0 + w1
        for i in range(n):
            u = np.int64(key_b[i])
            d = u >> shift
            pos = h2[d]
            h2[d] = pos + 1
            key_a[pos] = u
            pktcp_a[pos] = pktcp_b[i]
            by_a[pos] = by_b[i]
        rkey, rpktcp, rby = key_a, pktcp_a, by_a

    # Branchless segmented reduce: records are in full key order with
    # original row order preserved per key.
    prev = np.int64(rkey[0])
    tcp = np.float64((rpktcp[0] >> 31) & 1)
    pk = np.float64(rpktcp[0] & _I32_MAX)
    out_keys[0] = kmin + prev
    out_a[0] = tcp * pk
    out_b[0] = tcp * np.float64(rby[0])
    out_c[0] = pk
    nu = 1
    for i in range(1, n):
        u = np.int64(rkey[i])
        fresh = u != prev
        prev = u
        if fresh:
            nu += 1
        m = nu - 1
        out_keys[m] = kmin + u
        sum_a = 0.0 if fresh else out_a[m]
        sum_b = 0.0 if fresh else out_b[m]
        sum_c = 0.0 if fresh else out_c[m]
        tcp = np.float64((rpktcp[i] >> 31) & 1)
        pk = np.float64(rpktcp[i] & _I32_MAX)
        out_a[m] = sum_a + tcp * pk
        out_b[m] = sum_b + tcp * np.float64(rby[i])
        out_c[m] = sum_c + pk

    # Per-block regroup of the (still unscaled) totals.
    prev_blk = out_keys[0] >> block_shift
    blk_keys[0] = prev_blk
    blk_vals[0] = out_c[0]
    nblk = 1
    for i in range(1, nu):
        blk = out_keys[i] >> block_shift
        fresh = blk != prev_blk
        prev_blk = blk
        if fresh:
            nblk += 1
        m = nblk - 1
        blk_keys[m] = blk
        sum_v = 0.0 if fresh else blk_vals[m]
        blk_vals[m] = sum_v + out_c[i]
    for i in range(nu):
        out_a[i] *= factor
        out_b[i] *= factor
        out_c[i] *= factor
    for i in range(nblk):
        blk_vals[i] *= factor
    counts[0] = nu
    counts[1] = nblk
    return 0


def fold1_impl(
    keys, packets, block_shift,
    out_keys, out_a,
    blk_keys, blk_vals,
    key_a, pk_a, key_b, pk_b,
    counts,
):
    """Grouped packet sums per src key + the block regroup (unscaled)."""
    n = len(keys)
    counts[0] = 0
    counts[1] = 0
    if n == 0:
        return 0
    kmin = np.int64(keys[0])
    kmax = np.int64(keys[0])
    for i in range(n):
        k = np.int64(keys[i])
        if k < kmin:
            kmin = k
        if k > kmax:
            kmax = k
        if packets[i] >= _I32_MAX or packets[i] < 0:
            return -1
    bits = _bits_of(kmax - kmin)
    npass, w0, w1, w2 = _pass_plan(bits)

    h0 = np.zeros(1 << w0, dtype=np.int64)
    h1 = np.zeros((1 << w1) if npass > 1 else 1, dtype=np.int64)
    h2 = np.zeros((1 << w2) if npass > 2 else 1, dtype=np.int64)
    m0 = np.int64((1 << w0) - 1)
    m1 = np.int64((1 << w1) - 1)
    for i in range(n):
        u = np.int64(keys[i]) - kmin
        h0[u & m0] += 1
        if npass > 1:
            h1[(u >> w0) & m1] += 1
        if npass > 2:
            h2[u >> (w0 + w1)] += 1
    run = np.int64(0)
    for b in range(len(h0)):
        count = h0[b]
        h0[b] = run
        run += count
    if npass > 1:
        run = np.int64(0)
        for b in range(len(h1)):
            count = h1[b]
            h1[b] = run
            run += count
    if npass > 2:
        run = np.int64(0)
        for b in range(len(h2)):
            count = h2[b]
            h2[b] = run
            run += count

    for i in range(n):
        u = np.int64(keys[i]) - kmin
        pos = h0[u & m0]
        h0[u & m0] = pos + 1
        key_a[pos] = u
        pk_a[pos] = np.int32(packets[i])
    rkey, rpk = key_a, pk_a
    if npass > 1:
        for i in range(n):
            u = np.int64(key_a[i])
            d = (u >> w0) & m1
            pos = h1[d]
            h1[d] = pos + 1
            key_b[pos] = u
            pk_b[pos] = pk_a[i]
        rkey, rpk = key_b, pk_b
    if npass > 2:
        shift = w0 + w1
        for i in range(n):
            u = np.int64(key_b[i])
            d = u >> shift
            pos = h2[d]
            h2[d] = pos + 1
            key_a[pos] = u
            pk_a[pos] = pk_b[i]
        rkey, rpk = key_a, pk_a

    prev = np.int64(rkey[0])
    out_keys[0] = kmin + prev
    out_a[0] = np.float64(rpk[0])
    nu = 1
    for i in range(1, n):
        u = np.int64(rkey[i])
        fresh = u != prev
        prev = u
        if fresh:
            nu += 1
        m = nu - 1
        out_keys[m] = kmin + u
        sum_a = 0.0 if fresh else out_a[m]
        out_a[m] = sum_a + np.float64(rpk[i])

    prev_blk = out_keys[0] >> block_shift
    blk_keys[0] = prev_blk
    blk_vals[0] = out_a[0]
    nblk = 1
    for i in range(1, nu):
        blk = out_keys[i] >> block_shift
        fresh = blk != prev_blk
        prev_blk = blk
        if fresh:
            nblk += 1
        m = nblk - 1
        blk_keys[m] = blk
        sum_v = 0.0 if fresh else blk_vals[m]
        blk_vals[m] = sum_v + out_a[i]
    counts[0] = nu
    counts[1] = nblk
    return 0


def group_sum_impl(
    keys, cols, out_keys, out_cols,
    key_a, off_a, key_b, off_b,
    acc, seen, touched,
):
    """Grouped f64 sums over an i64-keyed part (row-order accumulation).

    ``cols``/``out_cols`` are (ncols, n) 2-D float64 arrays.  Key range
    must fit 32 bits (status -1 otherwise: caller falls back).  Values
    are gathered through a row-index indirection — this path compacts
    raw (unsorted) parts, which are rare and small next to the fused
    fold.
    """
    n = len(keys)
    ncols = cols.shape[0]
    if n == 0:
        return 0
    kmin = keys[0]
    kmax = keys[0]
    for i in range(n):
        k = keys[i]
        if k < kmin:
            kmin = k
        if k > kmax:
            kmax = k
    if (kmax - kmin) > np.int64(4294967295):
        return -1
    bits = _bits_of(kmax - kmin)

    use_direct = bits <= DIRECT_BITS
    if use_direct:
        rkey, roff = key_a, off_a
        for i in range(n):
            rkey[i] = keys[i] - kmin
            roff[i] = i
    else:
        part_bits = bits - DIRECT_BITS
        d1 = RADIX_BITS if part_bits > RADIX_BITS else part_bits
        d2 = part_bits - d1
        mask1 = (1 << d1) - 1
        shift2 = DIRECT_BITS + d1

        h1 = np.zeros(1 << d1, dtype=np.int64)
        h2 = np.zeros((1 << d2) if d2 > 0 else 1, dtype=np.int64)
        for i in range(n):
            u = keys[i] - kmin
            h1[(u >> DIRECT_BITS) & mask1] += 1
            if d2 > 0:
                h2[u >> shift2] += 1
        run = np.int64(0)
        for b in range(len(h1)):
            count = h1[b]
            h1[b] = run
            run += count
        if d2 > 0:
            run = np.int64(0)
            for b in range(len(h2)):
                count = h2[b]
                h2[b] = run
                run += count
        for i in range(n):
            u = keys[i] - kmin
            d = (u >> DIRECT_BITS) & mask1
            pos = h1[d]
            h1[d] = pos + 1
            key_a[pos] = u
            off_a[pos] = i
        if d2 > 0:
            for i in range(n):
                u = key_a[i]
                d = u >> shift2
                pos = h2[d]
                h2[d] = pos + 1
                key_b[pos] = u
                off_b[pos] = off_a[i]
            rkey, roff = key_b, off_b
        else:
            rkey, roff = key_a, off_a

    nu = 0
    nt = 0
    smin = DIRECT_SLOTS
    smax = -1
    cur = rkey[0] >> DIRECT_BITS
    for i in range(n + 1):
        u = np.int64(0)
        if i < n:
            u = rkey[i]
            g = u >> DIRECT_BITS
        else:
            g = cur + 1
        if g != cur:
            _sorted_slots(seen, touched, nt, smin, smax)
            base = kmin + (cur << DIRECT_BITS)
            for t in range(nt):
                s = np.int64(touched[t])
                out_keys[nu] = base + s
                for c in range(ncols):
                    out_cols[c, nu] = acc[3 * s + c]
                seen[s] = 0
                nu += 1
            nt = 0
            smin = DIRECT_SLOTS
            smax = -1
            if i == n:
                break
            cur = g
        s = u & DIRECT_MASK
        if seen[s] == 0:
            seen[s] = 1
            touched[nt] = s
            nt += 1
            for c in range(ncols):
                acc[3 * s + c] = 0.0
            if s < smin:
                smin = s
            if s > smax:
                smax = s
        row = roff[i]
        for c in range(ncols):
            acc[3 * s + c] += cols[c, row]
    return nu


def merge_sorted_impl(ka, va, kb, vb, ko, vo):
    """Two-way merge of sorted-unique parts, summing equal keys a + b.

    ``va``/``vb``/``vo`` are (ncols, n) float64 arrays.  Returns the
    merged length.
    """
    na = len(ka)
    nb = len(kb)
    ncols = va.shape[0]
    i = 0
    j = 0
    m = 0
    while i < na and j < nb:
        a = ka[i]
        b = kb[j]
        if a < b:
            ko[m] = a
            for c in range(ncols):
                vo[c, m] = va[c, i]
            i += 1
        elif b < a:
            ko[m] = b
            for c in range(ncols):
                vo[c, m] = vb[c, j]
            j += 1
        else:
            ko[m] = a
            for c in range(ncols):
                vo[c, m] = va[c, i] + vb[c, j]
            i += 1
            j += 1
        m += 1
    while i < na:
        ko[m] = ka[i]
        for c in range(ncols):
            vo[c, m] = va[c, i]
        i += 1
        m += 1
    while j < nb:
        ko[m] = kb[j]
        for c in range(ncols):
            vo[c, m] = vb[c, j]
        j += 1
        m += 1
    return m


def merge_k_impl(keys_cat, cols_cat, part_ends, out_keys, out_cols):
    """K-way merge of sorted-unique parts laid out back to back.

    ``keys_cat``/``cols_cat`` hold all parts concatenated (part p spans
    ``[part_ends[p-1], part_ends[p])``); ``cols_cat``/``out_cols`` are
    (ncols, n) float64 arrays.  Each key's sum accumulates over parts
    in part order starting from 0.0 — the float operation order
    np.bincount applies to the concatenation.  Returns the merged
    length.
    """
    nparts = len(part_ends)
    ncols = cols_cat.shape[0]
    idx = np.empty(nparts, dtype=np.int64)
    start = np.int64(0)
    for p in range(nparts):
        idx[p] = start
        start = part_ends[p]
    m = 0
    while True:
        best = np.int64(0)
        live = False
        for p in range(nparts):
            if idx[p] < part_ends[p]:
                k = keys_cat[idx[p]]
                if not live or k < best:
                    best = k
                live = True
        if not live:
            break
        out_keys[m] = best
        for c in range(ncols):
            out_cols[c, m] = 0.0
        for p in range(nparts):
            i = idx[p]
            if i < part_ends[p] and keys_cat[i] == best:
                for c in range(ncols):
                    out_cols[c, m] += cols_cat[c, i]
                idx[p] = i + 1
        m += 1
    return m


def member_mask_impl(values, table, out):
    """values[i] in sorted table (the searchsorted probe, fused)."""
    n = len(values)
    m = len(table)
    for i in range(n):
        v = values[i]
        lo = 0
        hi = m
        while lo < hi:
            mid = (lo + hi) >> 1
            if table[mid] < v:
                lo = mid + 1
            else:
                hi = mid
        out[i] = 1 if (lo < m and table[lo] == v) else 0


def interval_mask_impl(starts, ends, blocks, out):
    """blocks[i] inside any [start, end] cumulative-max interval."""
    n = len(blocks)
    m = len(starts)
    for i in range(n):
        b = blocks[i]
        lo = 0
        hi = m
        while lo < hi:
            mid = (lo + hi) >> 1
            if starts[mid] <= b:
                lo = mid + 1
            else:
                hi = mid
        out[i] = 1 if (lo > 0 and b <= ends[lo - 1]) else 0
