"""Packet-size fingerprint tuning on labelled ISP data (paper Table 3).

The ISP hosting TUS1 sees both directions of its traffic, so its /24s
can be *labelled*: a subnet that receives traffic but originates less
than the activity cut over the week is dark; one originating at least
``active_min_week_packets`` is active (the conservative 10 M-packet
constraint of Section 4.1, in simulation units).  Subnets in between
are left out of the evaluation, exactly as the paper drops them.

Against those labels we evaluate the two candidate features — median
and average inbound TCP packet size per /24 — across thresholds,
producing the FPR/FNR/TPR/TNR/F1 grid of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.flows import FlowTable, aggregate_sums, weighted_median
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True, slots=True)
class IspLabels:
    """Labelled ISP /24 subnets."""

    receiving_blocks: np.ndarray
    active_blocks: np.ndarray
    dark_blocks: np.ndarray
    #: Blocks that originate traffic but below the activity cut; they
    #: are excluded from the evaluation (ambiguous).
    excluded_blocks: np.ndarray


def label_isp_blocks(
    isp_views: list[VantageDayView],
    isp_blocks: np.ndarray,
    active_min_week_packets: int,
) -> IspLabels:
    """Label the ISP's subnets from a week of border NetFlow."""
    isp_blocks = np.unique(np.asarray(isp_blocks, dtype=np.int64))
    received: set[int] = set()
    originated: dict[int, int] = {}
    for view in isp_views:
        agg = view.aggregates()
        mask = np.isin(agg.blocks, isp_blocks)
        received.update(agg.blocks[mask].tolist())
        src_mask = np.isin(agg.src_blocks, isp_blocks)
        for block, pkts in zip(
            agg.src_blocks[src_mask].tolist(), agg.src_packets[src_mask].tolist()
        ):
            originated[block] = originated.get(block, 0) + int(pkts)
    receiving = np.array(sorted(received), dtype=np.int64)
    active = np.array(
        sorted(
            b for b, pkts in originated.items() if pkts >= active_min_week_packets
        ),
        dtype=np.int64,
    )
    weak = np.array(
        sorted(
            b for b, pkts in originated.items() if pkts < active_min_week_packets
        ),
        dtype=np.int64,
    )
    dark = np.setdiff1d(receiving, np.concatenate([active, weak]))
    return IspLabels(
        receiving_blocks=receiving,
        active_blocks=np.intersect1d(active, receiving),
        dark_blocks=dark,
        excluded_blocks=np.intersect1d(weak, receiving),
    )


@dataclass(frozen=True, slots=True)
class BlockSizeFeatures:
    """Per-/24 inbound TCP size features."""

    blocks: np.ndarray
    mean_size: np.ndarray
    median_size: np.ndarray


def block_size_features(
    inbound_tables: list[FlowTable], blocks: np.ndarray
) -> BlockSizeFeatures:
    """Mean and packet-weighted median TCP size per /24.

    The median treats each flow as ``packets`` samples of the flow's
    mean packet size — the closest recoverable statistic from flow
    records (NetFlow does not export per-packet sizes).
    """
    wanted = np.unique(np.asarray(blocks, dtype=np.int64))
    tcp = FlowTable.concat([t.tcp() for t in inbound_tables])
    tcp = tcp.toward_blocks(wanted)
    dst_blocks = tcp.dst_blocks()
    present, (pkt_sum, byte_sum) = aggregate_sums(dst_blocks, tcp.packets, tcp.bytes)
    mean_size = byte_sum / np.maximum(pkt_sum, 1)

    median_size = np.empty(len(present))
    order = np.argsort(dst_blocks, kind="stable")
    sorted_blocks = dst_blocks[order]
    flow_sizes = (tcp.bytes / np.maximum(tcp.packets, 1))[order]
    flow_weights = tcp.packets[order].astype(np.float64)
    boundaries = np.searchsorted(sorted_blocks, present)
    boundaries = np.append(boundaries, len(sorted_blocks))
    for i in range(len(present)):
        lo, hi = boundaries[i], boundaries[i + 1]
        median_size[i] = weighted_median(flow_sizes[lo:hi], flow_weights[lo:hi])
    return BlockSizeFeatures(
        blocks=present, mean_size=mean_size, median_size=median_size
    )


@dataclass(frozen=True, slots=True)
class ClassifierEvaluation:
    """One row of Table 3."""

    feature: str
    threshold: float
    false_positive_rate: float
    false_negative_rate: float
    true_positive_rate: float
    true_negative_rate: float
    f1_score: float


def evaluate_thresholds(
    features: BlockSizeFeatures,
    labels: IspLabels,
    thresholds: tuple[float, ...] = (40.0, 42.0, 44.0, 46.0),
) -> list[ClassifierEvaluation]:
    """Sweep both features across thresholds against the ISP labels.

    The positive class is "dark" (as in the paper: a true positive is
    a dark subnet classified dark; a false positive an active subnet
    classified dark).
    """
    rows = []
    eval_blocks = np.concatenate([labels.dark_blocks, labels.active_blocks])
    mask = np.isin(features.blocks, eval_blocks)
    blocks = features.blocks[mask]
    is_dark = np.isin(blocks, labels.dark_blocks)
    for feature_name, values in (
        ("median", features.median_size[mask]),
        ("average", features.mean_size[mask]),
    ):
        for threshold in thresholds:
            predicted_dark = values <= threshold
            tp = int((predicted_dark & is_dark).sum())
            fp = int((predicted_dark & ~is_dark).sum())
            fn = int((~predicted_dark & is_dark).sum())
            tn = int((~predicted_dark & ~is_dark).sum())
            rows.append(
                ClassifierEvaluation(
                    feature=feature_name,
                    threshold=threshold,
                    false_positive_rate=_ratio(fp, fp + tn),
                    false_negative_rate=_ratio(fn, fn + tp),
                    true_positive_rate=_ratio(tp, tp + fn),
                    true_negative_rate=_ratio(tn, tn + fp),
                    f1_score=_ratio(2 * tp, 2 * tp + fp + fn),
                )
            )
    return rows


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def isp_inbound_tables(
    isp_views: list[VantageDayView], isp_blocks: np.ndarray
) -> list[FlowTable]:
    """Inbound flow tables (dst inside the ISP) per view."""
    isp_blocks = np.unique(np.asarray(isp_blocks, dtype=np.int64))
    return [view.flows.toward_blocks(isp_blocks) for view in isp_views]
