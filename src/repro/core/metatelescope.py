"""The public meta-telescope facade.

A :class:`MetaTelescope` bundles everything an operator needs — the
Route Views feed, the special-purpose registry, liveness datasets, the
unrouted baseline, and thresholds — and turns vantage-day views into
the final set of meta-telescope prefixes plus the traffic captured
toward them (the paper's two data products, Section 5).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.bgp.rib import RouteViewsCollector, RoutingTable
from repro.core.accum import PrefixAccumulator, accumulate_views
from repro.core.parallel import ParallelStats, parallel_accumulate_views
from repro.core.pipeline import (
    PipelineConfig,
    PipelineResult,
    run_pipeline_accumulated,
)
from repro.core.refine import RefinementResult, refine_with_liveness
from repro.core.spoofing_tolerance import tolerances_from_accumulator
from repro.datasets.liveness import LivenessDataset
from repro.net.special import SPECIAL_PURPOSE_REGISTRY, SpecialPurposeRegistry
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True)
class MetaTelescopeResult:
    """Full outcome of one inference run."""

    pipeline: PipelineResult
    refinement: RefinementResult

    @property
    def prefixes(self) -> np.ndarray:
        """The final meta-telescope prefixes (/24 block ids)."""
        return self.refinement.final_blocks

    def num_prefixes(self) -> int:
        """Number of final meta-telescope /24 prefixes."""
        return len(self.refinement.final_blocks)


@dataclass
class MetaTelescope:
    """An operator's configured meta-telescope instance."""

    collector: RouteViewsCollector
    liveness: list[LivenessDataset] = field(default_factory=list)
    special: SpecialPurposeRegistry = field(
        default_factory=lambda: SPECIAL_PURPOSE_REGISTRY
    )
    #: Unrouted baseline /24s for the spoofing tolerance (None disables).
    unrouted_baseline: np.ndarray | None = None
    config: PipelineConfig = field(default_factory=PipelineConfig)
    _routing_cache: dict[tuple[int, ...], RoutingTable] = field(
        default_factory=dict, repr=False
    )
    #: Stats of the most recent parallel fold (None after serial folds).
    _last_parallel_stats: ParallelStats | None = field(
        default=None, repr=False, compare=False
    )

    def replace_collector(self, collector) -> None:
        """Swap the RIB feed (e.g. for a fault-plan's stale-RIB proxy).

        The per-day routing cache is dropped: entries built from the old
        feed would otherwise silently serve the new one.
        """
        self.collector = collector
        self._routing_cache.clear()

    def routing_for_days(self, days: list[int]) -> RoutingTable:
        """Union routing table over the involved days' RIB dumps."""
        key = tuple(sorted(set(days)))
        cached = self._routing_cache.get(key)
        if cached is not None:
            return cached
        seen = {}
        for day in key:
            for announcement in self.collector.daily_table(day).announcements:
                seen[(announcement.prefix, announcement.origin_asn)] = announcement
        table = RoutingTable(seen.values())
        self._routing_cache[key] = table
        return table

    def accumulate(
        self,
        views: list[VantageDayView],
        chunk_size: int | str | None = None,
        workers: int | None = None,
    ) -> PrefixAccumulator:
        """Fold views into a mergeable accumulator with this instance's
        ASN-ignore configuration applied.

        ``workers`` > 1 fans the fold out across a process pool
        (``0`` = one worker per available CPU); the result is
        bit-identical to the serial fold for any worker count.
        """
        self._last_parallel_stats = None
        if workers is not None and workers != 1:
            accumulator, stats = parallel_accumulate_views(
                views,
                ignore_sources_from_asns=self.config.ignore_sources_from_asns,
                workers=workers,
                chunk_size=chunk_size,
            )
            self._last_parallel_stats = stats
            return accumulator
        return accumulate_views(
            views,
            ignore_sources_from_asns=self.config.ignore_sources_from_asns,
            chunk_size=chunk_size,
        )

    def infer(
        self,
        views: list[VantageDayView],
        use_spoofing_tolerance: bool = False,
        refine: bool = True,
        chunk_size: int | str | None = None,
        workers: int | None = None,
    ) -> MetaTelescopeResult:
        """Run the full pipeline (+ optional tolerance and refinement).

        ``chunk_size`` bounds ingestion memory: each view is folded into
        the per-/24 accumulator ``chunk_size`` rows at a time instead of
        being aggregated whole (``"auto"`` picks a size from the view).
        ``workers`` shards the fold across a process pool.  The
        classification is bit-identical under any combination.
        """
        if not views:
            raise ValueError("need at least one vantage-day view")
        accumulator = self.accumulate(
            views, chunk_size=chunk_size, workers=workers
        )
        result = self.infer_accumulated(
            accumulator,
            use_spoofing_tolerance=use_spoofing_tolerance,
            refine=refine,
        )
        stats = self._last_parallel_stats
        if stats is not None:
            pipeline = dataclasses.replace(
                result.pipeline,
                stage_timings=stats.stage_timings()
                + result.pipeline.stage_timings,
            )
            result = MetaTelescopeResult(
                pipeline=pipeline, refinement=result.refinement
            )
        return result

    def infer_accumulated(
        self,
        accumulator: PrefixAccumulator,
        use_spoofing_tolerance: bool = False,
        refine: bool = True,
    ) -> MetaTelescopeResult:
        """Run inference on already-streamed aggregates.

        This is the incremental entry point: the accumulator may have
        been built chunk by chunk, merged from partial accumulators, or
        carried over from earlier days — the views themselves are no
        longer needed.
        """
        if accumulator.is_empty():
            raise ValueError("need at least one vantage-day view")
        config = self.config
        if use_spoofing_tolerance:
            if self.unrouted_baseline is None:
                raise ValueError(
                    "spoofing tolerance requires an unrouted baseline"
                )
            tolerance = tolerances_from_accumulator(
                accumulator, self.unrouted_baseline
            )
            config = dataclasses.replace(config, spoof_tolerance=tolerance)
        routing = self.routing_for_days(accumulator.days())
        pipeline = run_pipeline_accumulated(
            accumulator, routing, config, special=self.special
        )
        if refine:
            refinement = refine_with_liveness(pipeline.dark_blocks, self.liveness)
        else:
            refinement = RefinementResult(
                final_blocks=pipeline.dark_blocks,
                removed_blocks=pipeline.dark_blocks[:0],
            )
        return MetaTelescopeResult(pipeline=pipeline, refinement=refinement)

    def captured_traffic(
        self,
        views: list[VantageDayView],
        result: "MetaTelescopeResult | np.ndarray",
    ) -> FlowTable:
        """Data product (b): flows destined to the inferred prefixes.

        ``result`` may be a full :class:`MetaTelescopeResult` or a bare
        array of /24 block ids (e.g. an online instance's serving list).
        """
        prefixes = result.prefixes if hasattr(result, "prefixes") else result
        tables = [view.flows.toward_blocks(prefixes) for view in views]
        return FlowTable.concat(tables)
