"""The public meta-telescope facade.

A :class:`MetaTelescope` bundles everything an operator needs — the
Route Views feed, the special-purpose registry, liveness datasets, the
unrouted baseline, and thresholds — and turns vantage-day views into
the final set of meta-telescope prefixes plus the traffic captured
toward them (the paper's two data products, Section 5).

Since the engine refactor the facade is thin: every fold is planned by
the instance's :class:`~repro.core.engine.ExecutionPlanner` and run by
:func:`~repro.core.engine.execute_plan` through a
:class:`~repro.core.engine.RunContext` — serial, chunked and parallel
execution are one code path, and the per-stage timing rows are derived
from the context's event stream in one place.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.bgp.rib import RouteViewsCollector, RoutingTable
from repro.core.accum import PrefixAccumulator
from repro.core.engine import (
    ExecutionPlan,
    ExecutionPlanner,
    RunContext,
    execute_plan,
)
from repro.core.pipeline import (
    PipelineConfig,
    PipelineResult,
    run_pipeline_accumulated,
)
from repro.core.refine import RefinementResult, refine_with_liveness
from repro.core.snapshot import ClassificationSnapshot, build_snapshot
from repro.core.spoofing_tolerance import tolerances_from_accumulator
from repro.datasets.liveness import LivenessDataset
from repro.net.special import SPECIAL_PURPOSE_REGISTRY, SpecialPurposeRegistry
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True)
class MetaTelescopeResult:
    """Full outcome of one inference run."""

    pipeline: PipelineResult
    refinement: RefinementResult

    @property
    def prefixes(self) -> np.ndarray:
        """The final meta-telescope prefixes (/24 block ids)."""
        return self.refinement.final_blocks

    def num_prefixes(self) -> int:
        """Number of final meta-telescope /24 prefixes."""
        return len(self.refinement.final_blocks)

    def to_snapshot(
        self,
        day: int,
        history=None,
        provenance=None,
    ) -> ClassificationSnapshot:
        """Freeze this result into an immutable, servable snapshot.

        The served dark set is the *refined* prefix list; blocks the
        pipeline inferred dark but liveness refinement removed are kept
        as ``candidate`` so a snapshot consumer can tell "served" from
        "provisionally dark".  ``history`` is the optional
        ``[(day, dark_blocks), ...]`` record feeding since-day and
        confidence (see :func:`repro.core.snapshot.build_snapshot`).
        """
        dark = self.refinement.final_blocks
        return build_snapshot(
            day=day,
            dark=dark,
            unclean=self.pipeline.unclean_blocks,
            gray=self.pipeline.gray_blocks,
            candidate=np.setdiff1d(self.pipeline.dark_blocks, dark),
            history=history,
            provenance=provenance,
            family=self.pipeline.family,
        )


@dataclass
class MetaTelescope:
    """An operator's configured meta-telescope instance."""

    collector: RouteViewsCollector
    liveness: list[LivenessDataset] = field(default_factory=list)
    special: SpecialPurposeRegistry = field(
        default_factory=lambda: SPECIAL_PURPOSE_REGISTRY
    )
    #: Unrouted baseline /24s for the spoofing tolerance (None disables).
    unrouted_baseline: np.ndarray | None = None
    config: PipelineConfig = field(default_factory=PipelineConfig)
    #: Decides how folds execute (mode, chunking, sharding).  Swap in a
    #: planner with a ``memory_budget_mib`` to cap the fold's estimated
    #: working set.
    planner: ExecutionPlanner = field(default_factory=ExecutionPlanner)
    _routing_cache: dict[tuple[int, ...], RoutingTable] = field(
        default_factory=dict, repr=False
    )
    #: RunContext of the most recent fold/inference (trace access).
    _last_context: RunContext | None = field(
        default=None, repr=False, compare=False
    )

    def replace_collector(self, collector) -> None:
        """Swap the RIB feed (e.g. for a fault-plan's stale-RIB proxy).

        The per-day routing cache is dropped: entries built from the old
        feed would otherwise silently serve the new one.
        """
        self.collector = collector
        self._routing_cache.clear()

    def routing_for_days(self, days: list[int]) -> RoutingTable:
        """Union routing table over the involved days' RIB dumps."""
        key = tuple(sorted(set(days)))
        cached = self._routing_cache.get(key)
        if cached is not None:
            return cached
        seen = {}
        for day in key:
            for announcement in self.collector.daily_table(day).announcements:
                seen[(announcement.prefix, announcement.origin_asn)] = announcement
        table = RoutingTable(seen.values())
        self._routing_cache[key] = table
        return table

    def plan(
        self,
        views: list[VantageDayView],
        chunk_size: int | str | None = None,
        workers: int | None = None,
        kernel: str | None = None,
    ) -> ExecutionPlan:
        """Build (without executing) the plan a fold of ``views`` would run.

        This is what ``python -m repro plan`` (and ``infer --explain``)
        prints: mode, shard layout, chunk resolution, cache policy, the
        resolved kernel backend and the estimated peak memory — pure
        data, nothing folded.
        """
        return self.planner.plan(
            views, chunk_size=chunk_size, workers=workers, kernel=kernel
        )

    def last_run_context(self) -> RunContext | None:
        """RunContext of the most recent fold (its full event stream)."""
        return self._last_context

    def accumulate(
        self,
        views: list[VantageDayView],
        chunk_size: int | str | None = None,
        workers: int | None = None,
        context: RunContext | None = None,
        plan: ExecutionPlan | None = None,
        kernel: str | None = None,
    ) -> PrefixAccumulator:
        """Fold views into a mergeable accumulator with this instance's
        ASN-ignore configuration applied.

        The fold runs through the execution engine: the planner picks
        serial / chunked / parallel from the knobs and the views (or a
        hand-built ``plan`` forces the choice), and every chunk, view
        and worker lands on the ``context``'s observability spine.  The
        result is bit-identical for any plan (and for either kernel
        backend).
        """
        if plan is None:
            plan = self.planner.plan(
                views, chunk_size=chunk_size, workers=workers, kernel=kernel
            )
        if context is None:
            context = RunContext(knobs=plan.knobs, plan=plan)
        self._last_context = context
        return execute_plan(
            plan,
            views,
            context,
            ignore_sources_from_asns=self.config.ignore_sources_from_asns,
        )

    def infer(
        self,
        views: list[VantageDayView],
        use_spoofing_tolerance: bool = False,
        refine: bool = True,
        chunk_size: int | str | None = None,
        workers: int | None = None,
        context: RunContext | None = None,
        plan: ExecutionPlan | None = None,
        kernel: str | None = None,
    ) -> MetaTelescopeResult:
        """Run the full pipeline (+ optional tolerance and refinement).

        ``chunk_size`` bounds ingestion memory (``"auto"`` picks a size
        per view), ``workers`` shards the fold across a process pool
        and ``kernel`` picks the fold backend; classification is
        bit-identical under any combination.  The returned stage
        timings are derived from the run's event stream, so parallel
        runs carry their ``fanout[wK]``/``ipc``/``merge`` rows in the
        same shape as every other path.
        """
        if not views:
            raise ValueError("need at least one vantage-day view")
        if plan is None:
            plan = self.planner.plan(
                views, chunk_size=chunk_size, workers=workers, kernel=kernel
            )
        if context is None:
            context = RunContext(knobs=plan.knobs, plan=plan)
        accumulator = self.accumulate(views, context=context, plan=plan)
        result = self.infer_accumulated(
            accumulator,
            use_spoofing_tolerance=use_spoofing_tolerance,
            refine=refine,
            context=context,
        )
        pipeline = dataclasses.replace(
            result.pipeline, stage_timings=context.stage_timings()
        )
        return MetaTelescopeResult(
            pipeline=pipeline, refinement=result.refinement
        )

    def infer_accumulated(
        self,
        accumulator: PrefixAccumulator,
        use_spoofing_tolerance: bool = False,
        refine: bool = True,
        context: RunContext | None = None,
    ) -> MetaTelescopeResult:
        """Run inference on already-streamed aggregates.

        This is the incremental entry point: the accumulator may have
        been built chunk by chunk, merged from partial accumulators, or
        carried over from earlier days — the views themselves are no
        longer needed.
        """
        if accumulator.is_empty():
            raise ValueError("need at least one vantage-day view")
        config = self.config
        if use_spoofing_tolerance:
            if self.unrouted_baseline is None:
                raise ValueError(
                    "spoofing tolerance requires an unrouted baseline"
                )
            tolerance = tolerances_from_accumulator(
                accumulator, self.unrouted_baseline
            )
            config = dataclasses.replace(config, spoof_tolerance=tolerance)
        routing = self.routing_for_days(accumulator.days())
        pipeline = run_pipeline_accumulated(
            accumulator, routing, config, special=self.special, context=context
        )
        if refine:
            refinement = refine_with_liveness(pipeline.dark_blocks, self.liveness)
        else:
            refinement = RefinementResult(
                final_blocks=pipeline.dark_blocks,
                removed_blocks=pipeline.dark_blocks[:0],
            )
        return MetaTelescopeResult(pipeline=pipeline, refinement=refinement)

    def infer_snapshot(
        self,
        views: list[VantageDayView],
        day: int | None = None,
        use_spoofing_tolerance: bool = False,
        refine: bool = True,
        chunk_size: int | str | None = None,
        workers: int | None = None,
        context: RunContext | None = None,
        provenance: dict | None = None,
        kernel: str | None = None,
    ) -> ClassificationSnapshot:
        """Run :meth:`infer` and freeze the outcome as a snapshot.

        The snapshot's provenance records the execution plan that
        produced it — including the resolved kernel backend — plus
        anything the caller adds; ``day`` defaults to the latest day
        among the views.
        """
        plan = self.planner.plan(
            views, chunk_size=chunk_size, workers=workers, kernel=kernel
        )
        result = self.infer(
            views,
            use_spoofing_tolerance=use_spoofing_tolerance,
            refine=refine,
            context=context,
            plan=plan,
        )
        if day is None:
            day = max(view.day for view in views)
        record = {"plan": plan.to_dict()}
        record.update(provenance or {})
        return result.to_snapshot(day, provenance=record)

    def captured_traffic(
        self,
        views: list[VantageDayView],
        result: "MetaTelescopeResult | np.ndarray",
    ) -> FlowTable:
        """Data product (b): flows destined to the inferred prefixes.

        ``result`` may be a full :class:`MetaTelescopeResult` or a bare
        array of /24 block ids (e.g. an online instance's serving list).
        """
        prefixes = result.prefixes if hasattr(result, "prefixes") else result
        tables = [view.flows.toward_blocks(prefixes) for view in views]
        return FlowTable.concat(tables)
