"""Serialisation of the meta-telescope's data products.

The two products of the paper's Section 5 need durable formats so an
operator can feed them into firewalls, IDSs or a CERT report:

* the **prefix list** — one ``a.b.c.0/24`` per line, with a comment
  header (the format every BGP/ACL toolchain ingests);
* the **captured-traffic table** — CSV flow records (no payloads, by
  construction).

Both round-trip losslessly.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path

import numpy as np

from repro.net.blocksets import aggregate_blocks, expand_prefixes
from repro.net.ipv4 import Prefix, block_to_prefix, parse_ip
from repro.traffic.flows import FLOW_COLUMNS, FlowTable


def write_prefix_list(
    blocks: np.ndarray,
    path: str | Path,
    comment: str | None = None,
    aggregate: bool = False,
) -> None:
    """Write /24 block ids as a CIDR list, one prefix per line.

    With ``aggregate=True`` contiguous runs collapse into their minimal
    CIDR cover (what an operator actually ships to routers/ACLs).
    """
    lines = []
    if comment:
        lines.extend(f"# {line}" for line in comment.splitlines())
    unique = np.unique(np.asarray(blocks, dtype=np.int64))
    if aggregate:
        lines.extend(str(prefix) for prefix in aggregate_blocks(unique))
    else:
        lines.extend(str(block_to_prefix(int(block))) for block in unique)
    Path(path).write_text("\n".join(lines) + "\n")


def read_prefix_list(path: str | Path) -> np.ndarray:
    """Read a CIDR list written by :func:`write_prefix_list`.

    Entries of /24 or shorter are expanded back to /24 block ids;
    blank lines and ``#`` comments are skipped.
    """
    prefixes = []
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        prefix = Prefix.parse(line)
        if prefix.length > 24:
            raise ValueError(f"finer than /24: {line!r}")
        prefixes.append(prefix)
    return expand_prefixes(prefixes)


def write_flows_csv(flows: FlowTable, path: str | Path) -> None:
    """Write a flow table as CSV (header = column names)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(FLOW_COLUMNS)
        for row in zip(*(getattr(flows, name) for name in FLOW_COLUMNS)):
            writer.writerow([int(v) for v in row])


def read_flows_csv(path: str | Path) -> FlowTable:
    """Read a flow table written by :func:`write_flows_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != list(FLOW_COLUMNS):
            raise ValueError(f"unexpected flow CSV header: {header}")
        rows = [tuple(int(v) for v in row) for row in reader]
    if not rows:
        return FlowTable.empty()
    columns = list(zip(*rows))
    return FlowTable(
        **{
            name: np.array(columns[i], dtype=dtype)
            for i, (name, dtype) in enumerate(FLOW_COLUMNS.items())
        }
    )


def prefix_list_text(blocks: np.ndarray, comment: str | None = None) -> str:
    """The prefix list as a string (for pipes and tests)."""
    buffer = _io.StringIO()
    lines = []
    if comment:
        lines.extend(f"# {line}" for line in comment.splitlines())
    lines.extend(
        str(block_to_prefix(int(block)))
        for block in np.unique(np.asarray(blocks, dtype=np.int64))
    )
    buffer.write("\n".join(lines) + "\n")
    return buffer.getvalue()
