"""Serialisation of the meta-telescope's data products.

The two products of the paper's Section 5 need durable formats so an
operator can feed them into firewalls, IDSs or a CERT report:

* the **prefix list** — one ``a.b.c.0/24`` per line, with a comment
  header (the format every BGP/ACL toolchain ingests);
* the **captured-traffic table** — CSV flow records (no payloads, by
  construction).

Both round-trip losslessly.

Readers come in two modes.  The default (strict) readers raise on the
first malformed row, naming the file and 1-based line number.  The
``*_lenient`` variants never raise on row-level damage: bad rows are
skipped and collected into a :class:`ParseReport`, so a mostly-good
day survives a corrupted export instead of being lost entirely.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.net.blocksets import aggregate_blocks, expand_prefixes
from repro.net.ipv4 import Prefix, block_to_prefix
from repro.traffic.flows import FLOW_COLUMNS, FlowTable


@dataclass(frozen=True, slots=True)
class RowError:
    """One malformed row, by position."""

    line: int
    message: str
    text: str


@dataclass
class ParseReport:
    """Row-level damage collected by a lenient read."""

    path: str
    total_rows: int = 0
    good_rows: int = 0
    errors: list[RowError] = field(default_factory=list)

    def ok(self) -> bool:
        """Whether every row parsed."""
        return not self.errors

    def error_fraction(self) -> float:
        """Share of rows that failed to parse."""
        return len(self.errors) / self.total_rows if self.total_rows else 0.0

    def summary(self) -> str:
        """One-line operator summary."""
        if self.ok():
            return f"{self.path}: {self.good_rows} row(s), no errors"
        first = self.errors[0]
        return (
            f"{self.path}: {len(self.errors)} of {self.total_rows} row(s) "
            f"malformed (first at line {first.line}: {first.message})"
        )


# -- prefix lists -------------------------------------------------------


def _format_prefix_lines(
    blocks: np.ndarray, comment: str | None, aggregate: bool
) -> list[str]:
    """The one true prefix-list rendering (writers must not diverge)."""
    lines = []
    if comment:
        lines.extend(f"# {line}" for line in comment.splitlines())
    unique = np.unique(np.asarray(blocks, dtype=np.int64))
    if aggregate:
        lines.extend(str(prefix) for prefix in aggregate_blocks(unique))
    else:
        lines.extend(str(block_to_prefix(int(block))) for block in unique)
    return lines


def write_prefix_list(
    blocks: np.ndarray,
    path: str | Path,
    comment: str | None = None,
    aggregate: bool = False,
) -> None:
    """Write /24 block ids as a CIDR list, one prefix per line.

    With ``aggregate=True`` contiguous runs collapse into their minimal
    CIDR cover (what an operator actually ships to routers/ACLs).
    """
    lines = _format_prefix_lines(blocks, comment, aggregate)
    Path(path).write_text("\n".join(lines) + "\n")


def prefix_list_text(
    blocks: np.ndarray,
    comment: str | None = None,
    aggregate: bool = False,
) -> str:
    """The prefix list as a string (for pipes and tests).

    Renders through the same path as :func:`write_prefix_list`, so the
    two can never drift apart — including the ``aggregate`` option.
    """
    return "\n".join(_format_prefix_lines(blocks, comment, aggregate)) + "\n"


def _parse_prefix_lines(
    path: str | Path, strict: bool
) -> tuple[list[Prefix], ParseReport]:
    report = ParseReport(path=str(path))
    prefixes = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        report.total_rows += 1
        try:
            prefix = Prefix.parse(line)
            if prefix.length > 24:
                raise ValueError(f"finer than /24: {line!r}")
        except ValueError as error:
            if strict:
                raise ValueError(f"{path}:{lineno}: {error}") from None
            report.errors.append(
                RowError(line=lineno, message=str(error), text=line)
            )
            continue
        report.good_rows += 1
        prefixes.append(prefix)
    return prefixes, report


def read_prefix_list(path: str | Path) -> np.ndarray:
    """Read a CIDR list written by :func:`write_prefix_list`.

    Entries of /24 or shorter are expanded back to /24 block ids; blank
    lines and ``#`` comments are skipped.  Malformed entries raise with
    the file name and line number.
    """
    prefixes, _ = _parse_prefix_lines(path, strict=True)
    return expand_prefixes(prefixes)


def read_prefix_list_lenient(
    path: str | Path,
) -> tuple[np.ndarray, ParseReport]:
    """Like :func:`read_prefix_list`, but bad lines are collected.

    Returns the blocks that did parse, plus the :class:`ParseReport`
    naming every skipped line.
    """
    prefixes, report = _parse_prefix_lines(path, strict=False)
    return expand_prefixes(prefixes), report


# -- flow tables --------------------------------------------------------


def write_flows_csv(flows: FlowTable, path: str | Path) -> None:
    """Write a flow table as CSV (header = column names)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(FLOW_COLUMNS)
        for row in zip(*(getattr(flows, name) for name in FLOW_COLUMNS)):
            writer.writerow([int(v) for v in row])


def _parse_flow_rows(
    path: str | Path, strict: bool
) -> tuple[list[tuple[int, ...]], ParseReport]:
    report = ParseReport(path=str(path))
    expected = len(FLOW_COLUMNS)
    rows: list[tuple[int, ...]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != list(FLOW_COLUMNS):
            raise ValueError(f"unexpected flow CSV header: {header}")
        for row in reader:
            # Trailing blank lines (and stray empty records) are not
            # data; skip them in both modes.
            if not row or all(not cell.strip() for cell in row):
                continue
            report.total_rows += 1
            lineno = reader.line_num
            try:
                if len(row) != expected:
                    raise ValueError(
                        f"expected {expected} fields, got {len(row)}"
                    )
                parsed = tuple(int(v) for v in row)
            except ValueError as error:
                if strict:
                    raise ValueError(f"{path}:{lineno}: {error}") from None
                report.errors.append(
                    RowError(line=lineno, message=str(error), text=",".join(row))
                )
                continue
            report.good_rows += 1
            rows.append(parsed)
    return rows, report


def _rows_to_table(rows: list[tuple[int, ...]]) -> FlowTable:
    if not rows:
        return FlowTable.empty()
    columns = list(zip(*rows))
    return FlowTable(
        **{
            name: np.array(columns[i], dtype=dtype)
            for i, (name, dtype) in enumerate(FLOW_COLUMNS.items())
        }
    )


def iter_flows_csv(
    path: str | Path, chunk_rows: int = 65536
) -> Iterator[FlowTable]:
    """Stream a flow CSV as bounded-size :class:`FlowTable` chunks.

    The streaming counterpart of :func:`read_flows_csv` — strict (a
    malformed row raises with the file name and line number), but only
    ``chunk_rows`` parsed rows are ever held at once, so a multi-GB
    export can feed a :class:`repro.core.accum.PrefixAccumulator`
    without loading the day into memory.  Chunks concatenate to exactly
    the one-shot read.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    expected = len(FLOW_COLUMNS)
    pending: list[tuple[int, ...]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != list(FLOW_COLUMNS):
            raise ValueError(f"unexpected flow CSV header: {header}")
        for row in reader:
            if not row or all(not cell.strip() for cell in row):
                continue
            lineno = reader.line_num
            try:
                if len(row) != expected:
                    raise ValueError(
                        f"expected {expected} fields, got {len(row)}"
                    )
                pending.append(tuple(int(v) for v in row))
            except ValueError as error:
                raise ValueError(f"{path}:{lineno}: {error}") from None
            if len(pending) >= chunk_rows:
                yield _rows_to_table(pending)
                pending = []
    if pending:
        yield _rows_to_table(pending)


def read_flows_csv(path: str | Path) -> FlowTable:
    """Read a flow table written by :func:`write_flows_csv`.

    Malformed rows raise with the file name and line number; trailing
    blank lines are tolerated.
    """
    return FlowTable.concat(iter_flows_csv(path))


def read_flows_csv_lenient(
    path: str | Path,
) -> tuple[FlowTable, ParseReport]:
    """Like :func:`read_flows_csv`, but damaged rows are collected.

    Row-level damage (wrong arity, non-integer fields) is skipped and
    reported; a wrong header is still fatal, because then *nothing*
    about the file can be trusted.
    """
    rows, report = _parse_flow_rows(path, strict=False)
    return _rows_to_table(rows), report
