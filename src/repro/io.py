"""Serialisation of the meta-telescope's data products.

The two products of the paper's Section 5 need durable formats so an
operator can feed them into firewalls, IDSs or a CERT report:

* the **prefix list** — one ``a.b.c.0/24`` per line, with a comment
  header (the format every BGP/ACL toolchain ingests);
* the **captured-traffic table** — CSV flow records (no payloads, by
  construction).

Both round-trip losslessly.

Readers come in two modes.  The default (strict) readers raise on the
first malformed row, naming the file and 1-based line number.  The
``*_lenient`` variants never raise on row-level damage: bad rows are
skipped and collected into a :class:`ParseReport`, so a mostly-good
day survives a corrupted export instead of being lost entirely.

Flow tables additionally serialise to **flowpack**, a binary columnar
archive format (:mod:`repro.flowpack`) re-exported here: per-column
contiguous numpy buffers with per-column checksums, append-able
segment by segment, read back via ``np.memmap`` as zero-copy chunk
views — the replay-scale counterpart of the CSV interchange format.
``iter_flows_archive``/``read_flows_archive`` are drop-in for
``iter_flows_csv``/``read_flows_csv``, with the same strict/lenient
split (:func:`read_flows_archive_lenient` reports damaged segments
through the same :class:`ParseReport` path).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from itertools import chain
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.net.blocksets import aggregate_blocks, expand_prefixes
from repro.net.family import FAMILY_IPV4, FAMILY_IPV6, IPV4, AddressFamily
from repro.traffic.flows import FLOW_COLUMNS, FlowTable, flow_columns


@dataclass(frozen=True, slots=True)
class RowError:
    """One malformed row, by position."""

    line: int
    message: str
    text: str


@dataclass
class ParseReport:
    """Row-level damage collected by a lenient read."""

    path: str
    total_rows: int = 0
    good_rows: int = 0
    errors: list[RowError] = field(default_factory=list)

    def ok(self) -> bool:
        """Whether every row parsed."""
        return not self.errors

    def error_fraction(self) -> float:
        """Share of rows that failed to parse."""
        return len(self.errors) / self.total_rows if self.total_rows else 0.0

    def summary(self) -> str:
        """One-line operator summary."""
        if self.ok():
            return f"{self.path}: {self.good_rows} row(s), no errors"
        first = self.errors[0]
        return (
            f"{self.path}: {len(self.errors)} of {self.total_rows} row(s) "
            f"malformed (first at line {first.line}: {first.message})"
        )


# -- prefix lists -------------------------------------------------------


def _format_prefix_lines(
    blocks: np.ndarray,
    comment: str | None,
    aggregate: bool,
    family: AddressFamily = IPV4,
) -> list[str]:
    """The one true prefix-list rendering (writers must not diverge)."""
    lines = []
    if comment:
        lines.extend(f"# {line}" for line in comment.splitlines())
    unique = np.unique(np.asarray(blocks, dtype=np.int64))
    if aggregate:
        lines.extend(
            str(prefix) for prefix in aggregate_blocks(unique, family=family)
        )
    else:
        lines.extend(str(family.block_to_prefix(int(block))) for block in unique)
    return lines


def write_prefix_list(
    blocks: np.ndarray,
    path: str | Path,
    comment: str | None = None,
    aggregate: bool = False,
    family: AddressFamily = IPV4,
) -> None:
    """Write block ids as a CIDR list, one prefix per line.

    Blocks are the family's classification unit (/24 for IPv4, /48 for
    IPv6).  With ``aggregate=True`` contiguous runs collapse into their
    minimal CIDR cover (what an operator actually ships to
    routers/ACLs).
    """
    lines = _format_prefix_lines(blocks, comment, aggregate, family)
    Path(path).write_text("\n".join(lines) + "\n")


def prefix_list_text(
    blocks: np.ndarray,
    comment: str | None = None,
    aggregate: bool = False,
    family: AddressFamily = IPV4,
) -> str:
    """The prefix list as a string (for pipes and tests).

    Renders through the same path as :func:`write_prefix_list`, so the
    two can never drift apart — including the ``aggregate`` option.
    """
    return "\n".join(_format_prefix_lines(blocks, comment, aggregate, family)) + "\n"


def _parse_prefix_lines(
    path: str | Path, strict: bool, family: AddressFamily = IPV4
) -> tuple[list, ParseReport]:
    report = ParseReport(path=str(path))
    prefixes = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        report.total_rows += 1
        try:
            prefix = family.parse_prefix(line)
            if prefix.length > family.block_prefix_length:
                raise ValueError(
                    f"finer than /{family.block_prefix_length}: {line!r}"
                )
        except ValueError as error:
            if strict:
                raise ValueError(f"{path}:{lineno}: {error}") from None
            report.errors.append(
                RowError(line=lineno, message=str(error), text=line)
            )
            continue
        report.good_rows += 1
        prefixes.append(prefix)
    return prefixes, report


def read_prefix_list(
    path: str | Path, family: AddressFamily = IPV4
) -> np.ndarray:
    """Read a CIDR list written by :func:`write_prefix_list`.

    Entries at the family's block length or shorter are expanded back
    to block ids; blank lines and ``#`` comments are skipped.
    Malformed entries raise with the file name and line number.
    """
    prefixes, _ = _parse_prefix_lines(path, strict=True, family=family)
    return expand_prefixes(prefixes, family=family)


def read_prefix_list_lenient(
    path: str | Path, family: AddressFamily = IPV4
) -> tuple[np.ndarray, ParseReport]:
    """Like :func:`read_prefix_list`, but bad lines are collected.

    Returns the blocks that did parse, plus the :class:`ParseReport`
    naming every skipped line.
    """
    prefixes, report = _parse_prefix_lines(path, strict=False, family=family)
    return expand_prefixes(prefixes, family=family), report


# -- flow tables --------------------------------------------------------


def _csv_field_strings(column: np.ndarray) -> np.ndarray:
    """One column as decimal strings, matching ``csv.writer`` bytes.

    Signed/bool columns go through int64 (bools render ``0``/``1`` as
    the historical writer did); uint64 columns must not — an IPv6
    interface id can exceed 2**63-1, which int64 would wrap negative.
    """
    column = np.asarray(column)
    if column.dtype == np.uint64:
        return column.astype("U20")
    return column.astype(np.int64).astype("U20")


def _render_csv_rows(flows: FlowTable) -> str:
    """Render a flow table's data rows as CSV text, column-wise.

    Each numpy column becomes decimal strings in one vectorised
    ``astype`` and the field arrays are joined with ``np.char.add`` —
    no per-cell Python ``int()`` call.  The bytes match the historical
    ``csv.writer`` output exactly (CRLF line terminators included), so
    existing archives diff clean.  Empty tables render to ``""``.
    """
    if len(flows) == 0:
        return ""
    fields = [
        _csv_field_strings(getattr(flows, name)) for name in flows.columns()
    ]
    rows = fields[0]
    comma = np.array(",", dtype="U1")
    for column in fields[1:]:
        rows = np.char.add(np.char.add(rows, comma), column)
    return "\r\n".join(rows.tolist()) + "\r\n"


def write_flows_csv(flows: FlowTable, path: str | Path) -> None:
    """Write a flow table as CSV (header = column names).

    The header names the table's family schema (the IPv6 schema adds
    the uint64 key and ``*_ip_lo`` columns); readers dispatch on it.
    The writer is vectorised (see :func:`_render_csv_rows`); IPv4
    output is byte-identical to the per-row ``csv.writer`` it replaced.
    """
    header = ",".join(flows.columns()) + "\r\n"
    Path(path).write_text(header + _render_csv_rows(flows), newline="")


def _header_family(header: list[str] | None) -> str:
    """The address family whose schema matches a CSV header row."""
    for name in (FAMILY_IPV4, FAMILY_IPV6):
        if header == list(flow_columns(name)):
            return name
    raise ValueError(f"unexpected flow CSV header: {header}")


def _iter_valid_rows(
    path: str | Path, strict: bool, report: ParseReport
) -> Iterator:
    """The one row-validating core every CSV flow reader drives.

    The *first* yielded item is the family name resolved from the
    header (always fatal when it matches neither schema); every later
    item is a parsed row tuple.  Malformed rows raise with the file
    name and 1-based line number in strict mode and are collected into
    ``report`` otherwise.  Trailing blank lines (and stray empty
    records) are not data; both modes skip them.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        family = _header_family(next(reader, None))
        expected = len(flow_columns(family))
        yield family
        for row in reader:
            if not row or all(not cell.strip() for cell in row):
                continue
            report.total_rows += 1
            lineno = reader.line_num
            try:
                if len(row) != expected:
                    raise ValueError(
                        f"expected {expected} fields, got {len(row)}"
                    )
                parsed = tuple(int(v) for v in row)
            except ValueError as error:
                if strict:
                    raise ValueError(f"{path}:{lineno}: {error}") from None
                report.errors.append(
                    RowError(line=lineno, message=str(error), text=",".join(row))
                )
                continue
            report.good_rows += 1
            yield parsed


def _parse_flow_rows(
    path: str | Path, strict: bool
) -> tuple[str, list[tuple[int, ...]], ParseReport]:
    report = ParseReport(path=str(path))
    rows = _iter_valid_rows(path, strict, report)
    family = next(rows)
    return family, list(rows), report


def _rows_to_table(
    rows: list[tuple[int, ...]], family: str = "ipv4"
) -> FlowTable:
    if not rows:
        return FlowTable.empty(family)
    columns = list(zip(*rows))
    return FlowTable(
        **{
            name: np.array(columns[i], dtype=dtype)
            for i, (name, dtype) in enumerate(flow_columns(family).items())
        },
        family=family,
    )


def iter_flows_csv(
    path: str | Path, chunk_rows: int = 65536
) -> Iterator[FlowTable]:
    """Stream a flow CSV as bounded-size :class:`FlowTable` chunks.

    The streaming counterpart of :func:`read_flows_csv` — strict (a
    malformed row raises with the file name and line number), but only
    ``chunk_rows`` parsed rows are ever held at once, so a multi-GB
    export can feed a :class:`repro.core.accum.PrefixAccumulator`
    without loading the day into memory.  Chunks concatenate to exactly
    the one-shot read.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    pending: list[tuple[int, ...]] = []
    report = ParseReport(path=str(path))
    parser = _iter_valid_rows(path, strict=True, report=report)
    family = next(parser)
    for parsed in parser:
        pending.append(parsed)
        if len(pending) >= chunk_rows:
            yield _rows_to_table(pending, family)
            pending = []
    if pending:
        yield _rows_to_table(pending, family)


def read_flows_csv(path: str | Path) -> FlowTable:
    """Read a flow table written by :func:`write_flows_csv`.

    The family comes from the header, so an empty IPv6 export reads
    back as an empty IPv6 table.  Malformed rows raise with the file
    name and line number; trailing blank lines are tolerated.
    """
    family, rows, _ = _parse_flow_rows(path, strict=True)
    return _rows_to_table(rows, family)


def read_flows_csv_lenient(
    path: str | Path,
) -> tuple[FlowTable, ParseReport]:
    """Like :func:`read_flows_csv`, but damaged rows are collected.

    Row-level damage (wrong arity, non-integer fields) is skipped and
    reported; a wrong header is still fatal, because then *nothing*
    about the file can be trusted.
    """
    family, rows, report = _parse_flow_rows(path, strict=False)
    return _rows_to_table(rows, family), report


# -- flow archives (flowpack) -------------------------------------------
#
# The binary columnar counterpart of the CSV flow format lives in
# :mod:`repro.flowpack`; its public API is re-exported here so callers
# keep a single serialisation module.  ``iter_flows_archive`` /
# ``read_flows_archive`` / ``read_flows_archive_lenient`` mirror the
# ``*_csv`` trio exactly (strictness, chunking, ParseReport).

from repro.flowpack import (  # noqa: E402  (re-export)
    FlowpackArchive as FlowpackArchive,
    FlowpackError as FlowpackError,
    FlowpackWriter as FlowpackWriter,
    append_flows_archive as append_flows_archive,
    archive_meta as archive_meta,
    is_flowpack as is_flowpack,
    iter_flows_archive as iter_flows_archive,
    open_flows_archive as open_flows_archive,
    read_flows_archive as read_flows_archive,
    read_flows_archive_lenient as read_flows_archive_lenient,
    write_flows_archive as write_flows_archive,
)

#: Flow-table serialisation formats the CLI and converters accept.
FLOW_FORMATS = ("csv", "flowpack")


def sniff_flow_format(path: str | Path) -> str:
    """``"flowpack"`` or ``"csv"``, by magic bytes (not extension)."""
    return "flowpack" if is_flowpack(path) else "csv"


def convert_flows(
    source: str | Path,
    target: str | Path,
    to: str,
    chunk_rows: int = 65536,
) -> int:
    """Convert a flow file between formats, streaming; returns rows.

    The source format is sniffed from its magic bytes.  Conversion is
    chunked in both directions, so a multi-GB file converts in bounded
    memory; CSV → flowpack produces one segment per chunk (what a
    chunked capture stream would have written), and flowpack → CSV
    verifies every segment checksum on the way out.
    """
    if to not in FLOW_FORMATS:
        raise ValueError(f"unknown target format {to!r}; choose {FLOW_FORMATS}")
    source_format = sniff_flow_format(source)
    chunks = (
        iter_flows_archive(source, chunk_rows=chunk_rows)
        if source_format == "flowpack"
        else iter_flows_csv(source, chunk_rows=chunk_rows)
    )
    # Both writers need the family before the first chunk lands (the
    # flowpack header and the CSV header both encode the schema), so
    # peek one chunk; a source with no rows converts as IPv4.
    chunks = iter(chunks)
    first = next(chunks, None)
    all_chunks = chain([first], chunks) if first is not None else iter(())
    rows = 0
    if to == "flowpack":
        family = first.family if first is not None else FAMILY_IPV4
        with FlowpackWriter(target, family=family) as writer:
            for chunk in all_chunks:
                writer.write(chunk)
                rows += len(chunk)
        return rows
    # Chunked CSV write: the vectorised renderer formats each chunk,
    # appended behind the single header.
    header = first.columns() if first is not None else FLOW_COLUMNS
    with open(target, "w", newline="") as handle:
        handle.write(",".join(header) + "\r\n")
        for chunk in all_chunks:
            handle.write(_render_csv_rows(chunk))
            rows += len(chunk)
    return rows


def write_flows(
    flows: FlowTable, path: str | Path, format: str = "csv"
) -> None:
    """Write a flow table in the named format (``csv``/``flowpack``)."""
    if format == "csv":
        write_flows_csv(flows, path)
    elif format == "flowpack":
        write_flows_archive(flows, path)
    else:
        raise ValueError(f"unknown flow format {format!r}; choose {FLOW_FORMATS}")


def read_flows(path: str | Path) -> FlowTable:
    """Read a flow table in whichever format the file is (sniffed)."""
    if sniff_flow_format(path) == "flowpack":
        return read_flows_archive(path)
    return read_flows_csv(path)
