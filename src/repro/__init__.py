"""repro — an open reproduction of *How to Operate a Meta-Telescope in
your Spare Time* (Wagner et al., IMC 2023).

The package has two halves:

* a **synthetic Internet simulator** substituting for the paper's
  proprietary vantage data (:mod:`repro.net`, :mod:`repro.geo`,
  :mod:`repro.bgp`, :mod:`repro.traffic`, :mod:`repro.vantage`,
  :mod:`repro.datasets`, :mod:`repro.world`);
* the **meta-telescope methodology** itself (:mod:`repro.core`) plus
  the analyses of the paper's evaluation (:mod:`repro.analysis`,
  :mod:`repro.reporting`).

Quickstart::

    from repro.world.scenarios import small_world, small_observatory
    from repro.core import MetaTelescope

    world = small_world()
    observatory = small_observatory()
    views = observatory.all_ixp_views(num_days=1)
    telescope = MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
    )
    result = telescope.infer(views)
    print(result.num_prefixes(), "meta-telescope /24 prefixes")
"""

__version__ = "1.0.0"
