"""The atomic-swap snapshot handle.

The serving contract is: **readers never lock, never block, and never
observe a partial snapshot**.  The mechanism is the simplest one
CPython offers — a single attribute holding a whole immutable
:class:`~repro.core.snapshot.ClassificationSnapshot`.  Attribute loads
and stores are atomic under the interpreter, snapshots are frozen
dataclasses over read-only arrays, and a publish builds the *entire*
new snapshot before the one-instruction swap.  A reader that grabbed
the old snapshot keeps a consistent view for as long as it holds the
reference; there is no torn state to observe.

Writers (the background folder, the CLI) serialise among themselves on
a small lock — publishing is rare and cheap compared to folding — and
each publish stamps a monotonically increasing ``version`` into the
snapshot via :func:`dataclasses.replace`.  Recent snapshots are kept
in a bounded deque so diff feeds ("what changed since version N") can
be answered against any still-retained base.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque

from repro.core.snapshot import ClassificationSnapshot, SnapshotDiff


class SnapshotHandle:
    """Atomic publish/read handle over immutable snapshots.

    ``history`` bounds how many published snapshots stay reachable for
    diff queries; the current snapshot is always retained.
    """

    def __init__(self, history: int = 16) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self._current: ClassificationSnapshot | None = None
        self._history: deque[ClassificationSnapshot] = deque(maxlen=history)
        self._version = 0
        self._publish_lock = threading.Lock()

    # -- the read path (lock-free) -------------------------------------

    def current(self) -> ClassificationSnapshot | None:
        """The currently served snapshot (None before the first
        publish).  A single atomic attribute read — callers must hold
        the returned reference and query *it*, not re-call per field."""
        return self._current

    def version(self) -> int:
        """Version of the current snapshot (0 before the first publish)."""
        snapshot = self._current
        return snapshot.version if snapshot is not None else 0

    # -- the write path ------------------------------------------------

    def publish(
        self, snapshot: ClassificationSnapshot
    ) -> ClassificationSnapshot:
        """Stamp the next version onto ``snapshot`` and swap it in.

        Returns the stamped snapshot actually now being served.  The
        swap itself is one attribute store; everything else happens
        before it, on the writer's side only.
        """
        with self._publish_lock:
            self._version += 1
            stamped = dataclasses.replace(snapshot, version=self._version)
            self._history.append(stamped)
            self._current = stamped  # the atomic swap
            return stamped

    def adopt(self, snapshot: ClassificationSnapshot) -> ClassificationSnapshot:
        """Swap in a snapshot that already carries its version.

        This is the fleet-worker publish path: the supervisor stamps
        versions once, persists the snapshot, and every worker re-serves
        the *same* stamped artifact — re-stamping locally would make
        worker answers diverge from each other.  Versions still only
        move forward; adopting a version at or below the current one is
        a no-op returning the currently served snapshot (the worker saw
        a stale sentinel), so concurrent republish races are harmless.
        """
        if snapshot.version < 1:
            raise ValueError(
                "adopt needs a stamped snapshot (version >= 1); "
                "use publish() to stamp"
            )
        with self._publish_lock:
            if snapshot.version <= self._version:
                return self._current if self._current is not None else snapshot
            self._version = snapshot.version
            self._history.append(snapshot)
            self._current = snapshot  # the atomic swap
            return snapshot

    # -- diff feeds ----------------------------------------------------

    def at_version(self, version: int) -> ClassificationSnapshot | None:
        """A still-retained snapshot by exact version, if any."""
        for snapshot in self._history:
            if snapshot.version == version:
                return snapshot
        return None

    def diff_since(self, version: int) -> SnapshotDiff | None:
        """Change feed from retained ``version`` to the current
        snapshot; None when unpublished or the base has been evicted
        (the caller should fall back to a full fetch)."""
        current = self._current
        if current is None:
            return None
        base = self.at_version(version)
        if base is None:
            return None
        return current.diff(base)

    def versions_retained(self) -> list[int]:
        """Versions a diff can still be answered against."""
        return [snapshot.version for snapshot in self._history]
