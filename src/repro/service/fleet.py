"""The SO_REUSEPORT daemon fleet: N serving processes, one port.

A single asyncio daemon saturates one core; the fleet scales the query
path across cores the only way CPython scales CPU-bound work — with
**processes**.  Every worker runs a full :class:`ServiceDaemon` bound
to the *same* ``host:port`` with ``SO_REUSEPORT``, so the kernel
load-balances accepted connections across workers and clients need no
balancer in front.

The workers share one snapshot *artifact*, not one heap: the
supervisor persists each published snapshot as a flowpack
``snapshot.fpk`` (atomic ``os.replace``) and bumps a version sentinel
file; each worker polls the sentinel and re-opens the file through
:meth:`MetaTelescopeService.publish_path` — zero-copy ``np.memmap``
column views, so N processes serve one page-cache copy instead of N
materialised heap copies, and the file's stamped version is adopted
verbatim (every worker answers with the same ``snapshot_version``).

Publish protocol (all steps atomic or monotone, in this order)::

    1. supervisor stamps the next version (its own SnapshotHandle)
    2. write <root>/snapshot.fpk.tmp, os.replace -> <root>/snapshot.fpk
    3. write <root>/SERVING.json.tmp {version, day}, os.replace
    4. (optional) append the delta to the SnapshotDeltaStore

A worker that reads the sentinel mid-publish sees either the old or
the new version — never a torn file (``os.replace`` is atomic, and a
worker holding the *old* mmap keeps serving it consistently; the
replaced inode lives until unmapped).  If the snapshot file is already
newer than the sentinel says, :meth:`SnapshotHandle.adopt`'s
monotonicity makes the race harmless.

The supervisor also restarts workers that died (``ensure_alive``) and
drains them gracefully on shutdown: SIGTERM → stop accepting → finish
in-flight queries → exit.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.snapshot import ClassificationSnapshot
from repro.service.daemon import (
    MetaTelescopeService,
    QueryBudget,
    ServiceDaemon,
)
from repro.service.handle import SnapshotHandle

#: The served artifact and its version sentinel, inside the fleet root.
SNAPSHOT_FILE = "snapshot.fpk"
SENTINEL_FILE = "SERVING.json"


def _atomic_json(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def read_sentinel(root: str | Path) -> dict[str, Any] | None:
    """The fleet's current ``{version, day}`` sentinel, if published."""
    path = Path(root) / SENTINEL_FILE
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None  # not yet published, or caught mid-replace (retry)


def _worker_ready_path(root: Path, index: int) -> Path:
    return root / f"worker-{index}.json"


def free_reuseport(host: str) -> int:
    """An ephemeral port usable by several SO_REUSEPORT binders."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _worker_main(
    root: str,
    index: int,
    host: str,
    port: int,
    max_results: int,
    max_inflight: int,
    poll_interval: float,
    verify: bool,
) -> None:
    """One fleet worker: daemon + sentinel poller, until SIGTERM."""
    import asyncio

    root_path = Path(root)
    service = MetaTelescopeService(
        budget=QueryBudget(max_results=max_results),
        max_inflight=max_inflight,
    )
    daemon = ServiceDaemon(service, host=host, port=port, reuse_port=True)

    def refresh() -> None:
        sentinel = read_sentinel(root_path)
        if sentinel and sentinel["version"] > service.handle.version():
            service.publish_path(root_path / SNAPSHOT_FILE, verify=verify)

    async def main() -> None:
        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(signal.SIGTERM, stopping.set)
        loop.add_signal_handler(signal.SIGINT, stopping.set)
        refresh()  # serve immediately when a snapshot pre-exists
        await daemon.start()
        _atomic_json(
            _worker_ready_path(root_path, index),
            {
                "pid": os.getpid(),
                "port": daemon.port,
                "version": service.handle.version(),
            },
        )
        while not stopping.is_set():
            try:
                await asyncio.wait_for(
                    stopping.wait(), timeout=poll_interval
                )
            except asyncio.TimeoutError:
                pass
            before = service.handle.version()
            refresh()
            if service.handle.version() != before:
                _atomic_json(
                    _worker_ready_path(root_path, index),
                    {
                        "pid": os.getpid(),
                        "port": daemon.port,
                        "version": service.handle.version(),
                    },
                )
        await daemon.drain(timeout=5.0)

    asyncio.run(main())


@dataclass
class FleetWorker:
    """Supervisor-side record of one worker process."""

    index: int
    process: multiprocessing.process.BaseProcess
    restarts: int = 0


class FleetSupervisor:
    """Runs, feeds, restarts and drains an SO_REUSEPORT daemon fleet.

    The supervisor is the only *writer*: it stamps versions (through
    its own :class:`SnapshotHandle`, so ``publish`` works exactly like
    the single-process service's), persists the artifact, and bumps
    the sentinel.  Workers are pure readers of the fleet root.

    ``delta_store`` (a
    :class:`~repro.core.snapshot_store.SnapshotDeltaStore`) makes each
    publish also append its delta — the cheap year-scale archive.
    """

    def __init__(
        self,
        root: str | Path,
        processes: int,
        host: str = "127.0.0.1",
        port: int = 0,
        max_results: int = 1000,
        max_inflight: int = 64,
        poll_interval: float = 0.05,
        verify: bool = False,
        delta_store=None,
        history: int = 16,
        pfx2as=None,
        geodb=None,
    ) -> None:
        if processes < 1:
            raise ValueError("a fleet needs at least one process")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.processes = processes
        self.host = host
        self.port = port
        self.max_results = max_results
        self.max_inflight = max_inflight
        self.poll_interval = poll_interval
        self.verify = verify
        self.delta_store = delta_store
        self.pfx2as = pfx2as
        self.geodb = geodb
        #: Kept for :class:`~repro.service.daemon.BackgroundFolder`
        #: compatibility (engine health is a producer concern; fleet
        #: workers serve static artifacts and report serving health).
        self.health_provider = None
        self.handle = SnapshotHandle(history=history)
        self.workers: list[FleetWorker] = []
        # spawn, not fork: workers re-import and own their event loop —
        # forking a threaded/asyncio parent is where the bodies are.
        self._mp = multiprocessing.get_context("spawn")

    # -- publishing ----------------------------------------------------

    def publish(
        self, snapshot: ClassificationSnapshot
    ) -> ClassificationSnapshot:
        """Enrich, stamp, persist, sentinel-bump (and delta-append) one
        snapshot.  Safe before or after :meth:`start`; workers converge
        within ``poll_interval``.  Enrichment (AS/geo) happens here,
        once, on the supervisor — workers re-open the finished artifact
        and never pay for it."""
        stamped = self.handle.publish(
            snapshot.enrich(pfx2as=self.pfx2as, geodb=self.geodb)
        )
        tmp = self.root / (SNAPSHOT_FILE + ".tmp")
        stamped.save(tmp)
        os.replace(tmp, self.root / SNAPSHOT_FILE)
        _atomic_json(
            self.root / SENTINEL_FILE,
            {"version": stamped.version, "day": stamped.day},
        )
        if self.delta_store is not None:
            self.delta_store.append(stamped)
        return stamped

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Resolve the shared port and boot every worker."""
        if self.workers:
            raise RuntimeError("fleet already started")
        if self.port == 0:
            self.port = free_reuseport(self.host)
        for index in range(self.processes):
            self.workers.append(self._spawn(index))

    def _spawn(self, index: int, restarts: int = 0) -> FleetWorker:
        ready = _worker_ready_path(self.root, index)
        ready.unlink(missing_ok=True)
        process = self._mp.Process(
            target=_worker_main,
            args=(
                str(self.root), index, self.host, self.port,
                self.max_results, self.max_inflight, self.poll_interval,
                self.verify,
            ),
            name=f"meta-telescope-worker-{index}",
            daemon=True,
        )
        process.start()
        return FleetWorker(index=index, process=process, restarts=restarts)

    def worker_states(self) -> list[dict[str, Any] | None]:
        """Each worker's last self-reported ``{pid, port, version}``."""
        states = []
        for worker in self.workers:
            path = _worker_ready_path(self.root, worker.index)
            try:
                states.append(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError):
                states.append(None)
        return states

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every worker is listening (ready file written)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(state is not None for state in self.worker_states()):
                return
            if any(
                not worker.process.is_alive() for worker in self.workers
            ):
                raise RuntimeError("a fleet worker died during boot")
            time.sleep(0.01)
        raise TimeoutError(f"fleet not ready within {timeout}s")

    def wait_version(self, version: int, timeout: float = 30.0) -> None:
        """Block until every worker serves at least ``version``."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            states = self.worker_states()
            if all(
                state is not None and state["version"] >= version
                for state in states
            ):
                return
            time.sleep(0.01)
        raise TimeoutError(
            f"fleet did not converge to v{version} within {timeout}s: "
            f"{self.worker_states()}"
        )

    def ensure_alive(self) -> int:
        """Restart any dead workers; returns how many were restarted.

        Call periodically (the ``serve`` loop does) — a replacement
        worker rebinds the same SO_REUSEPORT address and re-serves the
        current sentinel version, so capacity recovers without any
        client-visible reconfiguration."""
        restarted = 0
        for slot, worker in enumerate(self.workers):
            if not worker.process.is_alive():
                self.workers[slot] = self._spawn(
                    worker.index, restarts=worker.restarts + 1
                )
                restarted += 1
        return restarted

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful drain: SIGTERM every worker, then join (kill
        stragglers past ``timeout``)."""
        for worker in self.workers:
            if worker.process.is_alive():
                worker.process.terminate()  # SIGTERM -> daemon.drain()
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            worker.process.join(max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(5.0)
        self.workers = []

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
