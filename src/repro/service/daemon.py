"""The query daemon: stdlib-asyncio HTTP/JSON over snapshot state.

Two layers, deliberately separated:

* :class:`MetaTelescopeService` — the pure query engine.  Every
  operation grabs the current snapshot from the
  :class:`~repro.service.handle.SnapshotHandle` **once** and answers
  entirely from that reference, so a concurrent publish can never mix
  two snapshots inside one answer.  Budgets (result caps), load-shed
  accounting, health and trace emission all live here, which is what
  lets the robustness catalog, the tests and the benchmark drive the
  *service path* without a socket.
* :class:`ServiceDaemon` — a minimal HTTP/1.1 front end on
  ``asyncio.start_server`` (GET + JSON; keep-alive).  No third-party
  web framework: the paper's operators run this next to a collector,
  and the stdlib is the only dependency that is always there.

Endpoints (all JSON)::

    GET /healthz                        liveness + HealthReport summary
    GET /v1/snapshot                    current snapshot metadata
    GET /v1/point?prefix=203.0.113.0/24 one /24's verdict
    GET /v1/range?start=B&end=B         blocks in [start, end]
    GET /v1/range?prefix=198.51.0.0/16  blocks inside a covering prefix
    GET /v1/as?asn=64500                blocks originated by an AS
    GET /v1/geo?country=DE              blocks geolocated to a country
    GET /v1/diff?since=V                change feed since version V

Load-shed: requests beyond ``max_inflight`` are answered ``503``
immediately (readers never queue behind a stampede), as are data
queries before the first publish.  List answers are capped by the
:class:`QueryBudget` and flagged ``truncated`` rather than streamed
unbounded.  With a :class:`~repro.core.engine.RunContext` attached,
every query emits a ``query`` event and every publish a ``publish``
event through the PR-5 sink API.

Polling clients are nearly free: every ``/v1/*`` answer carries a
version-based ``ETag`` (``"v<N>"``), a matching ``If-None-Match``
request turns into a bodyless ``304``, and the header-less equivalent
``?if_version_changed=N`` short-circuits to a tiny
``{"not_modified": true}`` payload before any query work runs.

Scale-out happens across *processes*, not threads:
:class:`ServiceDaemon` can bind its port with ``SO_REUSEPORT``
(``reuse_port=True``) so N independent daemons share one address and
the kernel load-balances accepted connections — see
:mod:`repro.service.fleet` for the supervisor that runs and feeds such
a fleet off one shared-page-cache ``snapshot.fpk``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable
from urllib.parse import parse_qs, urlsplit

from repro.core.engine import RunContext
from repro.core.snapshot import ClassificationSnapshot
from repro.net.family import IPV4, AddressFamily
from repro.net.ipv4 import AddressError
from repro.service.handle import SnapshotHandle


class QueryError(ValueError):
    """A malformed query (HTTP 400)."""


@dataclass(frozen=True, slots=True)
class QueryBudget:
    """Per-query result budget.

    ``max_results`` caps every list-shaped answer; callers may ask for
    less via ``limit`` but never more.  Keeps a single range query over
    a paper-scale snapshot from serialising millions of rows.
    """

    max_results: int = 1000

    def clamp(self, requested: int | None) -> int:
        if requested is None or requested <= 0:
            return self.max_results
        return min(requested, self.max_results)


def parse_block(text: str, family: AddressFamily = IPV4) -> int:
    """A block id from a block-length CIDR, a bare IP, or an integer.

    The block length is the family's classification unit: /24 for
    IPv4, /48 for IPv6.
    """
    text = text.strip()
    if "/" in text:
        try:
            prefix = family.parse_prefix(text)
        except AddressError as error:
            raise QueryError(str(error)) from error
        if prefix.length != family.block_prefix_length:
            raise QueryError(
                f"point queries are per /{family.block_prefix_length} "
                f"({family.name}); got /{prefix.length}"
            )
        return prefix.first_block()
    try:
        if "." in text or ":" in text:
            return family.block_of_ip(family.parse_ip(text))
        return int(text)
    except (AddressError, ValueError) as error:
        raise QueryError(
            f"not a /{family.block_prefix_length}, IP or block id: "
            f"{text!r}"
        ) from error


class MetaTelescopeService:
    """The socket-free query engine every front end shares."""

    def __init__(
        self,
        handle: SnapshotHandle | None = None,
        pfx2as=None,
        geodb=None,
        health_provider: Callable[[], Any] | None = None,
        context: RunContext | None = None,
        budget: QueryBudget | None = None,
        max_inflight: int = 64,
        delta_store=None,
    ) -> None:
        self.handle = handle if handle is not None else SnapshotHandle()
        self.pfx2as = pfx2as
        self.geodb = geodb
        #: Callable returning the producing engine's HealthReport (the
        #: PR-1 machinery), or None when serving a static snapshot.
        self.health_provider = health_provider
        self.context = context
        self.budget = budget if budget is not None else QueryBudget()
        self.max_inflight = max_inflight
        #: Optional :class:`~repro.core.snapshot_store.SnapshotDeltaStore`
        #: fed one delta per :meth:`publish` (the year-scale archive).
        self.delta_store = delta_store
        self.queries_served = 0
        self.queries_shed = 0
        self.publishes = 0
        self._inflight = 0
        self._stats_lock = threading.Lock()

    # -- publishing ----------------------------------------------------

    def publish(
        self, snapshot: ClassificationSnapshot
    ) -> ClassificationSnapshot:
        """Enrich (AS/geo, if datasets are attached) and swap in.

        Enrichment happens on the writer's side, before the atomic
        swap, so queries never pay for it.
        """
        started = time.perf_counter()
        stamped = self.handle.publish(
            snapshot.enrich(pfx2as=self.pfx2as, geodb=self.geodb)
        )
        if self.delta_store is not None:
            self.delta_store.append(stamped)
        self._note_publish(stamped, started)
        return stamped

    def publish_path(
        self, path: str | Path, verify: bool = True
    ) -> ClassificationSnapshot:
        """Serve straight off a flowpack-persisted ``snapshot.fpk``.

        The opened snapshot's columns are zero-copy ``np.memmap`` views
        (:meth:`ClassificationSnapshot.open`), so N processes serving
        the same file share one page-cache copy instead of N heap
        copies; point and range queries run their ``searchsorted``
        probes directly on the mapped arrays.  The file's own stamped
        version is **adopted**, not re-stamped — every process serving
        this artifact answers with the same version — and no
        enrichment runs (a persisted snapshot is already enriched).
        ``verify=False`` skips the CRC pass (e.g. a fleet worker
        re-opening a file its supervisor just wrote and verified).
        """
        started = time.perf_counter()
        snapshot = ClassificationSnapshot.open(path, verify=verify)
        adopted = self.handle.adopt(snapshot)
        self._note_publish(adopted, started)
        return adopted

    def _note_publish(
        self, stamped: ClassificationSnapshot, started: float
    ) -> None:
        with self._stats_lock:
            self.publishes += 1
        if self.context is not None:
            self.context.emit(
                "publish",
                f"v{stamped.version}",
                time.perf_counter() - started,
                rows_out=len(stamped),
                meta={"day": stamped.day, "version": stamped.version},
            )

    # -- load-shed accounting -----------------------------------------

    def admit(self) -> bool:
        """Admit one query, or shed it (caller answers 503)."""
        with self._stats_lock:
            if self._inflight >= self.max_inflight:
                self.queries_shed += 1
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._stats_lock:
            self._inflight -= 1
            self.queries_served += 1

    # -- queries (each grabs ONE snapshot reference) -------------------

    def _require(self) -> ClassificationSnapshot:
        snapshot = self.handle.current()
        if snapshot is None:
            raise LookupError("no snapshot published yet")
        return snapshot

    @staticmethod
    def _envelope(
        snapshot: ClassificationSnapshot,
        answer: dict[str, Any],
        day: bool = False,
    ) -> dict[str, Any]:
        """Stamp the one response envelope every query answer shares.

        ``snapshot_version`` names the exact snapshot the whole answer
        came from (the daemon's ``ETag`` is derived from it); ``day``
        additionally stamps ``snapshot_day`` for point answers.
        """
        answer["snapshot_version"] = snapshot.version
        if day:
            answer["snapshot_day"] = snapshot.day
        return answer

    def point(self, target: str) -> dict[str, Any]:
        """Is this block dark?  Since when?  With what confidence?"""
        snapshot = self._require()
        block = parse_block(target, snapshot.address_family)
        return self._envelope(
            snapshot, snapshot.lookup(block).to_dict(), day=True
        )

    def _rows(
        self, sub: ClassificationSnapshot, limit: int | None
    ) -> dict[str, Any]:
        cap = self.budget.clamp(limit)
        return {
            "total": len(sub),
            "truncated": len(sub) > cap,
            "rows": [answer.to_dict() for answer in sub.head(cap).rows()],
        }

    def range(
        self,
        start: int | None = None,
        end: int | None = None,
        prefix: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """All classified blocks in a block range or covering prefix."""
        snapshot = self._require()
        if prefix is not None:
            family = snapshot.address_family
            try:
                parsed = family.parse_prefix(prefix)
            except AddressError as error:
                raise QueryError(str(error)) from error
            if parsed.length > family.block_prefix_length:
                raise QueryError(
                    f"requested /{parsed.length} prefix {prefix} is more "
                    f"specific than this {snapshot.family} snapshot's "
                    f"/{family.block_prefix_length} blocks"
                )
            try:
                sub = snapshot.within_prefix(parsed)
            except ValueError as error:
                raise QueryError(str(error)) from error
        elif start is not None and end is not None:
            if end < start:
                raise QueryError(f"empty range: start {start} > end {end}")
            sub = snapshot.range(start, end)
        else:
            raise QueryError("range needs ?prefix= or ?start=&end=")
        return self._envelope(snapshot, self._rows(sub, limit))

    def by_as(self, asn: int, limit: int | None = None) -> dict[str, Any]:
        """All classified blocks originated by ``asn`` (needs an
        AS-enriched snapshot, i.e. a service with a ``pfx2as``)."""
        snapshot = self._require()
        answer = self._rows(snapshot.where(snapshot.asns == asn), limit)
        answer["asn"] = asn
        return self._envelope(snapshot, answer)

    def by_geo(
        self, country: str, limit: int | None = None
    ) -> dict[str, Any]:
        """All classified blocks geolocated to ``country`` (needs a
        geo-enriched snapshot)."""
        snapshot = self._require()
        code = country.strip().upper().encode()
        answer = self._rows(snapshot.where(snapshot.countries == code), limit)
        answer["country"] = country.upper()
        return self._envelope(snapshot, answer)

    def diff(self, since: int) -> dict[str, Any]:
        """What changed since version ``since``.

        When the base has been evicted from the handle's history the
        answer says so (``"base_retained": false``) and carries the
        current version, so the client knows to re-fetch in full.
        """
        snapshot = self._require()
        base = self.handle.at_version(since)
        # Diff against the one grabbed snapshot, not handle.diff_since —
        # a racing publish must never mix two versions in one answer.
        if base is None:
            return self._envelope(snapshot, {
                "base_retained": False,
                "since": since,
                "version": snapshot.version,
                "day": snapshot.day,
            })
        answer = snapshot.diff(base).to_dict()
        answer["base_retained"] = True
        return self._envelope(snapshot, answer)

    def snapshot_info(self) -> dict[str, Any]:
        """Metadata of the currently served snapshot."""
        snapshot = self._require()
        return self._envelope(snapshot, {
            "version": snapshot.version,
            "day": snapshot.day,
            "family": snapshot.family,
            "blocks": len(snapshot),
            "verdicts": snapshot.verdict_counts(),
            "provenance": dict(snapshot.provenance),
            "diffable_versions": self.handle.versions_retained(),
        })

    def healthz(self) -> tuple[bool, dict[str, Any]]:
        """Liveness verdict plus the producing engine's health."""
        snapshot = self.handle.current()
        body: dict[str, Any] = {
            "serving": snapshot is not None,
            "version": snapshot.version if snapshot is not None else 0,
            "queries_served": self.queries_served,
            "queries_shed": self.queries_shed,
            "publishes": self.publishes,
        }
        ok = snapshot is not None
        if self.health_provider is not None:
            report = self.health_provider()
            if report is not None:
                body["health"] = report.summary()
                body["health_ok"] = report.ok()
                body["staleness"] = report.current_staleness
                body["quarantined"] = len(report.quarantined_blocks)
        return ok, body


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------

_STATUS_TEXT = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


def _response(
    status: int,
    body: dict[str, Any] | None,
    keep_alive: bool,
    etag: str | None = None,
) -> bytes:
    """One HTTP response.  A ``Connection`` header is always emitted so
    HTTP/1.0 clients learn whether their keep-alive request was
    honored; ``304`` answers carry no body (RFC 9110) but repeat the
    ``ETag`` the cache validated against."""
    payload = b"" if status == 304 or body is None else json.dumps(body).encode()
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {connection}\r\n"
        + (f"ETag: {etag}\r\n" if etag is not None else "")
        + ("Retry-After: 1\r\n" if status == 503 else "")
        + "\r\n"
    )
    return head.encode() + payload


def _etag_of(body: dict[str, Any]) -> str | None:
    """The version-based entity tag of a query answer.

    Every ``/v1/*`` answer carries the envelope's ``snapshot_version``,
    so for a given URL the payload is a pure function of it — which is
    exactly what an entity tag asserts."""
    version = body.get("snapshot_version")
    return f'"v{version}"' if version is not None else None


def _first_int(params: dict[str, list[str]], name: str) -> int | None:
    values = params.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError as error:
        raise QueryError(f"{name} must be an integer: {values[0]!r}") from error


def _first(params: dict[str, list[str]], name: str) -> str | None:
    values = params.get(name)
    return values[0] if values else None


class ServiceDaemon:
    """Asyncio HTTP/1.1 JSON daemon over a :class:`MetaTelescopeService`."""

    def __init__(
        self,
        service: MetaTelescopeService,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Bind with ``SO_REUSEPORT`` so several daemon *processes*
        #: share one port and the kernel load-balances accepts — the
        #: fleet mode (:mod:`repro.service.fleet`).
        self.reuse_port = reuse_port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port,
            reuse_port=self.reuse_port or None,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, let in-flight queries
        finish (up to ``timeout``), then close idle keep-alive
        connections."""
        await self.stop()
        deadline = time.monotonic() + timeout
        while self.service._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._connections):
            writer.close()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ---------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    writer.write(
                        _response(400, {"error": "malformed request"}, False)
                    )
                    break
                headers: dict[str, str] = {}
                while True:  # drain headers (GET: no body expected)
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                # Keep-alive: an explicit Connection header wins in
                # either direction (an HTTP/1.0 client may ask for
                # keep-alive, an HTTP/1.1 client for close); only in
                # its absence does the protocol default decide.
                tokens = {
                    token.strip().lower()
                    for token in headers.get("connection", "").split(",")
                    if token.strip()
                }
                if "close" in tokens:
                    keep_alive = False
                elif "keep-alive" in tokens:
                    keep_alive = True
                else:
                    keep_alive = version.upper() != "HTTP/1.0"
                status, body, etag = self._dispatch(method, target, headers)
                writer.write(_response(status, body, keep_alive, etag=etag))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(
        self,
        method: str,
        target: str,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | None, str | None]:
        started = time.perf_counter()
        headers = headers or {}
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        if method != "GET":
            return 405, {"error": f"method {method} not allowed"}, None
        if path == "/healthz":
            ok, body = self.service.healthz()
            return (200 if ok else 503), body, None
        if not self.service.admit():
            return 503, {"error": "overloaded; retry"}, None
        try:
            params = parse_qs(split.query)
            status, body = self._conditional(path, params) or self._route(
                path, params
            )
        except QueryError as error:
            status, body = 400, {"error": str(error)}
        except AddressError as error:
            status, body = 400, {"error": str(error)}
        except LookupError as error:
            status, body = 503, {"error": str(error)}
        finally:
            self.service.release()
        etag = _etag_of(body) if status == 200 else None
        if etag is not None and headers.get("if-none-match") == etag:
            status, body = 304, None
        if self.service.context is not None:
            self.service.context.emit(
                "query",
                path,
                time.perf_counter() - started,
                meta={"status": status},
            )
        return status, body, etag

    def _conditional(
        self, path: str, params: dict[str, list[str]]
    ) -> tuple[int, dict] | None:
        """The ``?if_version_changed=V`` short-circuit on ``/v1/*``.

        When the served version still equals ``V`` the (possibly
        expensive) query never runs — the polling client gets a tiny
        304-equivalent JSON payload instead.  Returns None when the
        query should proceed normally."""
        if not path.startswith("/v1/"):
            return None
        since = _first_int(params, "if_version_changed")
        if since is None:
            return None
        version = self.service.handle.version()
        if version == 0 or version != since:
            return None  # unpublished (let the query 503) or changed
        return 200, {
            "not_modified": True,
            "snapshot_version": version,
        }

    def _route(
        self, path: str, params: dict[str, list[str]]
    ) -> tuple[int, dict]:
        service = self.service
        if path == "/v1/point":
            target = _first(params, "prefix") or _first(params, "block")
            if target is None:
                raise QueryError("point needs ?prefix= or ?block=")
            return 200, service.point(target)
        if path == "/v1/range":
            return 200, service.range(
                start=_first_int(params, "start"),
                end=_first_int(params, "end"),
                prefix=_first(params, "prefix"),
                limit=_first_int(params, "limit"),
            )
        if path == "/v1/as":
            asn = _first_int(params, "asn")
            if asn is None:
                raise QueryError("as needs ?asn=")
            return 200, service.by_as(asn, limit=_first_int(params, "limit"))
        if path == "/v1/geo":
            country = _first(params, "country")
            if country is None:
                raise QueryError("geo needs ?country=")
            return 200, service.by_geo(
                country, limit=_first_int(params, "limit")
            )
        if path == "/v1/diff":
            since = _first_int(params, "since")
            if since is None:
                raise QueryError("diff needs ?since=<version>")
            return 200, service.diff(since)
        if path == "/v1/snapshot":
            return 200, service.snapshot_info()
        return 404, {"error": f"no such endpoint: {path}"}


def run_daemon_in_thread(
    service: MetaTelescopeService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[ServiceDaemon, Callable[[], None]]:
    """Boot a daemon on a background event-loop thread.

    Returns ``(daemon, stop)`` once the socket is listening (the bound
    port is on ``daemon.port``).  This is what the tests, the benchmark
    and the CI smoke use; the ``serve`` CLI runs the loop in the
    foreground instead.
    """
    daemon = ServiceDaemon(service, host=host, port=port)
    started = threading.Event()
    boot_error: list[BaseException] = []
    loop = asyncio.new_event_loop()

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(daemon.start())
        except BaseException as error:  # surface bind failures to caller
            boot_error.append(error)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
            loop.run_until_complete(daemon.stop())
        finally:
            loop.close()

    thread = threading.Thread(
        target=runner, name="meta-telescope-daemon", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("daemon failed to start listening in time")
    if boot_error:
        raise boot_error[0]

    def stop() -> None:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)

    return daemon, stop


# ---------------------------------------------------------------------------
# Background folding
# ---------------------------------------------------------------------------


class BackgroundFolder:
    """Folds vantage-days off the read path and publishes snapshots.

    Wraps an :class:`~repro.core.online.OnlineMetaTelescope`: each
    :meth:`fold` runs the (expensive) daily update, derives the new
    immutable snapshot, and publishes it through the service's handle —
    readers keep answering from the previous snapshot until the single
    atomic swap.  :meth:`start` drives a whole feed on a daemon thread,
    which is how ``serve`` keeps folding while the HTTP loop serves.
    """

    def __init__(self, online, service: MetaTelescopeService) -> None:
        self.online = online
        self.service = service
        if service.health_provider is None:
            service.health_provider = online.health_report
        self._thread: threading.Thread | None = None
        self.days_folded = 0
        self.error: BaseException | None = None

    def fold(self, day: int, views) -> ClassificationSnapshot:
        """Fold one day and publish the resulting snapshot."""
        self.online.update(day, views)
        snapshot = self.service.publish(self.online.snapshot())
        self.days_folded += 1
        return snapshot

    def start(
        self, feed: Iterable[tuple[int, list]]
    ) -> threading.Thread:
        """Fold ``(day, views)`` pairs on a background thread."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("a feed is already being folded")

        def runner() -> None:
            try:
                for day, views in feed:
                    self.fold(day, views)
            except BaseException as error:
                self.error = error

        self._thread = threading.Thread(
            target=runner, name="meta-telescope-folder", daemon=True
        )
        self._thread.start()
        return self._thread

    def join(self, timeout: float | None = None) -> None:
        """Wait for the background feed; re-raise its failure, if any."""
        if self._thread is not None:
            self._thread.join(timeout)
        if self.error is not None:
            raise self.error
