"""Meta-telescope-as-a-service: the continuously queryable product.

The paper's Section 9 frames meta-telescope output as *information as
a service*: the value of knowing which /24s are dark lies in being
continuously queryable, not recomputed per question.  This package is
that product surface over the :mod:`repro.core.snapshot` layer:

* :mod:`repro.service.handle` — the atomic-swap
  :class:`SnapshotHandle`: writers publish whole immutable snapshots,
  readers grab the current one with a single attribute read and never
  lock;
* :mod:`repro.service.daemon` — the query engine
  (:class:`MetaTelescopeService`: point / range / AS / geo / diff /
  health, with per-query budgets, load-shed, version-based
  ``ETag``/``if_version_changed`` conditional answers) and the
  stdlib-asyncio HTTP/JSON front end (:class:`ServiceDaemon`), plus
  the :class:`BackgroundFolder` that folds new vantage-days through an
  :class:`~repro.core.online.OnlineMetaTelescope` off the read path
  and publishes fresh snapshots;
* :mod:`repro.service.fleet` — scale-out on one box: the
  :class:`FleetSupervisor` runs N daemon processes on one
  ``SO_REUSEPORT`` port, all serving zero-copy off one memory-mapped
  ``snapshot.fpk`` (publish = atomic file swap + version sentinel),
  restarting dead workers and draining gracefully.

Nothing beyond the standard library is required to serve.
"""

from repro.service.daemon import (
    BackgroundFolder,
    MetaTelescopeService,
    QueryBudget,
    ServiceDaemon,
    run_daemon_in_thread,
)
from repro.service.fleet import FleetSupervisor
from repro.service.handle import SnapshotHandle

__all__ = [
    "BackgroundFolder",
    "FleetSupervisor",
    "MetaTelescopeService",
    "QueryBudget",
    "ServiceDaemon",
    "SnapshotHandle",
    "run_daemon_in_thread",
]
