"""Autonomous-system registry: AS numbers, organisations, business types.

Mirrors the roles of CAIDA's as2org dataset and the IPInfo "IP to
Company" classification used by the paper (Section 3.3): every AS maps
to an operating organisation and one of four business categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

from repro.geo.countries import Continent, Country, country_by_code
from repro.net.ipv4 import Prefix


class ASType(str, Enum):
    """Business categories as used in Table 7 and Figures 12/16/19/20."""

    ISP = "ISP"
    ENTERPRISE = "Enterprise"
    EDUCATION = "Education"
    DATA_CENTER = "Data Center"


@dataclass(frozen=True, slots=True)
class Organization:
    """An operating entity (CAIDA as2org row)."""

    org_id: str
    name: str
    country_code: str


@dataclass(slots=True)
class AutonomousSystem:
    """One AS of the synthetic Internet.

    ``announced`` lists the prefixes the AS originates in BGP;
    ``is_cdn`` marks content networks that attract heavy asymmetric
    ACK traffic (the motivation for pipeline step 6); ``spoof_filtered``
    marks BCP 38 deployment (sources inside this AS are never spoofed
    *by others* claiming its space — the Spoofer-project signal the
    paper's Section 9 discusses).
    """

    asn: int
    name: str
    org_id: str
    as_type: ASType
    country_code: str
    announced: list[Prefix] = field(default_factory=list)
    is_cdn: bool = False
    spoof_filtered: bool = True

    @property
    def country(self) -> Country:
        """The registry row for this AS's country."""
        return country_by_code(self.country_code)

    @property
    def continent(self) -> Continent:
        """Continent of the AS's country."""
        return self.country.continent

    def num_announced_blocks(self) -> int:
        """Total /24 blocks announced by this AS."""
        return sum(prefix.num_blocks() for prefix in self.announced)


class ASRegistry:
    """Index of all ASes and organisations in a world."""

    def __init__(self) -> None:
        self._by_asn: dict[int, AutonomousSystem] = {}
        self._orgs: dict[str, Organization] = {}

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._by_asn.values())

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def add(self, autonomous_system: AutonomousSystem) -> None:
        """Register an AS; its ASN must be unique."""
        asn = autonomous_system.asn
        if asn in self._by_asn:
            raise ValueError(f"duplicate ASN {asn}")
        self._by_asn[asn] = autonomous_system

    def add_org(self, org: Organization) -> None:
        """Register an organisation (idempotent for identical rows)."""
        existing = self._orgs.get(org.org_id)
        if existing is not None and existing != org:
            raise ValueError(f"conflicting organisation {org.org_id}")
        self._orgs[org.org_id] = org

    def get(self, asn: int) -> AutonomousSystem:
        """Look up an AS by number; raises KeyError if unknown."""
        return self._by_asn[asn]

    def org(self, org_id: str) -> Organization:
        """Look up an organisation; raises KeyError if unknown."""
        return self._orgs[org_id]

    def asns(self) -> list[int]:
        """All ASNs, ascending."""
        return sorted(self._by_asn)

    def by_type(self, as_type: ASType) -> list[AutonomousSystem]:
        """All ASes of the given business type."""
        return [a for a in self._by_asn.values() if a.as_type is as_type]

    def by_country(self, country_code: str) -> list[AutonomousSystem]:
        """All ASes registered in the given country."""
        return [a for a in self._by_asn.values() if a.country_code == country_code]

    @classmethod
    def from_ases(cls, ases: Iterable[AutonomousSystem]) -> "ASRegistry":
        """Build a registry (and synthetic orgs) from AS records."""
        registry = cls()
        for autonomous_system in ases:
            registry.add(autonomous_system)
            registry.add_org(
                Organization(
                    org_id=autonomous_system.org_id,
                    name=f"{autonomous_system.name} Org",
                    country_code=autonomous_system.country_code,
                )
            )
        return registry
