"""Mid-campaign routing events: leaks, hijacks, and their RIB view.

The paper's step 5 consumes daily RIB unions from a Route Views
collector, and its operational sections warn that routing is the one
input the operator cannot freeze: a route leak or an origin hijack
mid-campaign moves destination blocks to a different origin AS — and
with it, to different IXP fabrics — without any change in what the
space truly is.  This module makes such events first-class:

* :class:`RouteEvent` declares one leak/hijack — a more-specific
  announcement by another origin over a window of days;
* :class:`EventedCollector` wraps any collector so the event's
  announcement appears in the affected days' RIB dumps, exactly as a
  collector peer would have recorded it.

The *traffic* side of an event (flows toward the affected prefix being
steered through the leaking AS) lives with the world scenarios in
:mod:`repro.world.scenarios`, next to the other world events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.rib import Announcement, RibSnapshot, RoutingTable
from repro.net.ipv4 import Prefix


@dataclass(frozen=True, slots=True)
class RouteEvent:
    """One route leak or origin hijack over a window of days.

    ``kind`` is ``"leak"`` (the legitimate origin's routes propagate
    through an unexpected path) or ``"hijack"`` (another origin
    announces the space).  Either way the collector records an extra
    announcement of ``prefix`` by ``by_asn`` on every day in ``days``.
    """

    prefix: Prefix
    by_asn: int
    days: frozenset[int]
    kind: str = "leak"

    def __post_init__(self) -> None:
        if self.kind not in ("leak", "hijack"):
            raise ValueError(f"unknown route event kind {self.kind!r}")

    def announcement(self) -> Announcement:
        """The extra announcement the collector sees on event days."""
        # Leaked/hijacked more-specifics flap across dumps — they are
        # propagation accidents, not stable policy.
        return Announcement(
            prefix=self.prefix, origin_asn=self.by_asn, stable=False
        )

    def active_on(self, day: int) -> bool:
        """Whether the event is in effect on ``day``."""
        return day in self.days


class EventedCollector:
    """A collector proxy that injects route events into daily RIBs.

    Wraps any object with the ``dump``/``daily_table``/``daily_prefixes``
    collector interface; on a day an event is active, its announcement
    joins the union (and each dump) as if a peer had exported it.
    """

    def __init__(self, base, events: list[RouteEvent]) -> None:
        self._base = base
        self.events = tuple(events)

    def _extra(self, day: int) -> list[Announcement]:
        return [
            event.announcement()
            for event in self.events
            if event.active_on(day)
        ]

    def dump(self, day: int, dump_index: int) -> RibSnapshot:
        """The base dump, plus any active event announcements."""
        snapshot = self._base.dump(day, dump_index)
        extra = self._extra(day)
        if not extra:
            return snapshot
        return RibSnapshot(
            dump_hour=snapshot.dump_hour,
            table=RoutingTable([*snapshot.table.announcements, *extra]),
        )

    def daily_table(self, day: int) -> RoutingTable:
        """Union RIB for the day, with active events folded in."""
        base = self._base.daily_table(day)
        extra = self._extra(day)
        if not extra:
            return base
        return RoutingTable([*base.announcements, *extra])

    def daily_prefixes(self, day: int) -> list[Prefix]:
        """All prefixes announced during the day (events included)."""
        return self.daily_table(day).prefixes()
