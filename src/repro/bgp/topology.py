"""AS-level topology: provider/customer and peering relationships.

The topology serves three purposes in the reproduction:

* it decides which (src AS, dst AS) traffic pairs are *visible* at a
  given IXP vantage point (traffic crosses the IXP only if the two
  members exchange it there or one transits for the other);
* it provides CAIDA-style *customer cones* for the spoofing-mitigation
  extension discussed in the paper's Section 9;
* it gives each world a stable tier structure (tier-1 backbone,
  mid-tier regionals, stub edges).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

import networkx as nx


class Relationship(str, Enum):
    """Inter-AS business relationship (CAIDA serial-1 style)."""

    PROVIDER_CUSTOMER = "p2c"
    PEER_PEER = "p2p"


class AsTopology:
    """Directed AS relationship graph.

    Provider->customer edges point downhill; peer links are stored as a
    symmetric edge pair tagged :attr:`Relationship.PEER_PEER`.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._cone_cache: dict[int, frozenset[int]] = {}

    def add_as(self, asn: int) -> None:
        """Ensure ``asn`` exists as a node."""
        self._graph.add_node(asn)

    def add_provider_customer(self, provider: int, customer: int) -> None:
        """Record that ``provider`` sells transit to ``customer``."""
        if provider == customer:
            raise ValueError("an AS cannot be its own provider")
        self._graph.add_edge(
            provider, customer, relationship=Relationship.PROVIDER_CUSTOMER
        )
        self._cone_cache.clear()

    def add_peering(self, left: int, right: int) -> None:
        """Record a settlement-free peering between two ASes."""
        if left == right:
            raise ValueError("an AS cannot peer with itself")
        self._graph.add_edge(left, right, relationship=Relationship.PEER_PEER)
        self._graph.add_edge(right, left, relationship=Relationship.PEER_PEER)
        self._cone_cache.clear()

    def asns(self) -> list[int]:
        """All ASNs in the graph, ascending."""
        return sorted(self._graph.nodes)

    def providers_of(self, asn: int) -> set[int]:
        """Direct transit providers of ``asn``."""
        return {
            upstream
            for upstream, _, data in self._graph.in_edges(asn, data=True)
            if data["relationship"] is Relationship.PROVIDER_CUSTOMER
        }

    def customers_of(self, asn: int) -> set[int]:
        """Direct customers of ``asn``."""
        return {
            downstream
            for _, downstream, data in self._graph.out_edges(asn, data=True)
            if data["relationship"] is Relationship.PROVIDER_CUSTOMER
        }

    def peers_of(self, asn: int) -> set[int]:
        """Settlement-free peers of ``asn``."""
        return {
            other
            for _, other, data in self._graph.out_edges(asn, data=True)
            if data["relationship"] is Relationship.PEER_PEER
        }

    def customer_cone(self, asn: int) -> frozenset[int]:
        """The AS plus everything reachable through customer links.

        This is CAIDA's "customer cone" [Luckie et al., IMC 2013]: the
        set of ASes whose announced space ``asn`` can legitimately
        source traffic from.  Used by the cone-based spoofing filter.
        """
        cached = self._cone_cache.get(asn)
        if cached is not None:
            return cached
        cone: set[int] = set()
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            if current in cone:
                continue
            cone.add(current)
            frontier.extend(self.customers_of(current))
        result = frozenset(cone)
        self._cone_cache[asn] = result
        return result

    def tier1_asns(self) -> list[int]:
        """ASes without any provider (the synthetic backbone clique)."""
        return sorted(
            asn for asn in self._graph.nodes if not self.providers_of(asn)
        )

    def is_stub(self, asn: int) -> bool:
        """True if the AS has no customers of its own."""
        return not self.customers_of(asn)

    def transit_path_exists(self, src: int, dst: int) -> bool:
        """True if valley-free connectivity plausibly exists.

        We use a coarse reachability check (the synthetic backbone is a
        full mesh, so any two ASes with providers are connected); it is
        enough to decide whether traffic *can* flow, which is all the
        vantage-point model needs.
        """
        if src == dst:
            return True
        graph = self._graph
        return src in graph and dst in graph

    @classmethod
    def build_hierarchy(
        cls,
        tier1: Iterable[int],
        mid_tier: dict[int, list[int]],
        stubs: dict[int, list[int]],
    ) -> "AsTopology":
        """Construct a three-tier topology.

        ``mid_tier`` maps each regional AS to its tier-1 providers;
        ``stubs`` maps each stub AS to its mid-tier (or tier-1)
        providers.  Tier-1s form a full peering mesh.
        """
        topology = cls()
        tier1_list = list(tier1)
        for asn in tier1_list:
            topology.add_as(asn)
        for i, left in enumerate(tier1_list):
            for right in tier1_list[i + 1 :]:
                topology.add_peering(left, right)
        for customer, providers in mid_tier.items():
            topology.add_as(customer)
            for provider in providers:
                topology.add_provider_customer(provider, customer)
        for customer, providers in stubs.items():
            topology.add_as(customer)
            for provider in providers:
                topology.add_provider_customer(provider, customer)
        return topology
