"""BGP substrate: AS registry, AS-level topology, and RIB emulation."""

from repro.bgp.asinfo import ASRegistry, ASType, AutonomousSystem, Organization
from repro.bgp.rib import Announcement, RibSnapshot, RouteViewsCollector, RoutingTable
from repro.bgp.topology import AsTopology, Relationship

__all__ = [
    "ASRegistry",
    "ASType",
    "AutonomousSystem",
    "Organization",
    "Announcement",
    "RibSnapshot",
    "RouteViewsCollector",
    "RoutingTable",
    "AsTopology",
    "Relationship",
]
