"""BGP RIB emulation: announcements, snapshots, and a Route-Views-style
collector.

The paper's pipeline step 5 ("Globally Routed") consumes daily unions of
the 12 two-hourly RIB dumps from a Route Views collector.  We reproduce
that interface: a :class:`RouteViewsCollector` emits 12
:class:`RibSnapshot` dumps per day with mild announcement churn
(flapping more-specifics), and :meth:`RouteViewsCollector.daily_prefixes`
returns their union.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.net.family import IPV4, AddressFamily, family_of_prefix
from repro.net.ipv4 import Prefix
from repro.net.trie import PrefixTrie, interval_covered_mask

DUMPS_PER_DAY = 12


@dataclass(frozen=True, slots=True)
class Announcement:
    """A (prefix, origin AS) pair as seen in a RIB dump."""

    prefix: Prefix
    origin_asn: int
    #: Stable announcements appear in every dump; flapping ones only in some.
    stable: bool = True


class RoutingTable:
    """A set of announcements with fast block-coverage queries.

    The table's address family is inferred from the first announcement's
    prefix type (IPv4 when empty); mixing families in one table is not
    supported.
    """

    def __init__(
        self,
        announcements: Iterable[Announcement],
        family: AddressFamily | None = None,
    ) -> None:
        self._announcements = tuple(announcements)
        if family is None:
            family = (
                family_of_prefix(self._announcements[0].prefix)
                if self._announcements
                else IPV4
            )
        self.family = family
        self._trie: PrefixTrie[int] = PrefixTrie(family=family)
        for announcement in self._announcements:
            self._trie.insert(announcement.prefix, announcement.origin_asn)
        # Sorted-interval table for routed_mask, built lazily on first
        # probe and pinned here: the table is immutable after __init__,
        # so coordinators that keep one RoutingTable across many
        # inference runs (online windows, federation) never rebuild it.
        self._interval_cache: tuple[np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self._announcements)

    @property
    def announcements(self) -> tuple[Announcement, ...]:
        """All announcements in this table."""
        return self._announcements

    def prefixes(self) -> list[Prefix]:
        """All announced prefixes, address-ordered."""
        return sorted(a.prefix for a in self._announcements)

    def origin_of_ip(self, ip: int) -> int | None:
        """Origin ASN by longest-prefix match, or None if unrouted."""
        match = self._trie.longest_match(ip)
        return None if match is None else match[1]

    def origin_of_block(self, block: int) -> int | None:
        """Origin ASN of the block's network address."""
        return self.origin_of_ip(self.family.block_to_ip(block))

    def is_routed_block(self, block: int) -> bool:
        """True if the block is entirely inside an announced prefix."""
        return self._trie.covers_block(block)

    def routed_mask(self, blocks: np.ndarray, kernel=None) -> np.ndarray:
        """Vectorised :meth:`is_routed_block`.

        ``kernel`` (a :mod:`repro.core.kernels` backend) runs the
        interval probe natively; ``None`` keeps the reference numpy
        scan — both are bit-identical by the kernel contract.
        """
        if self._interval_cache is None:
            self._interval_cache = self._trie.block_intervals()
        starts, ends = self._interval_cache
        if kernel is not None:
            return kernel.interval_covered_mask(starts, ends, blocks)
        return interval_covered_mask(starts, ends, blocks)


@dataclass(frozen=True, slots=True)
class RibSnapshot:
    """One RIB dump: a timestamp (hours since epoch) plus a table."""

    dump_hour: int
    table: RoutingTable


class RouteViewsCollector:
    """Emulates a Route Views collector over a fixed announcement set.

    Stable announcements appear in every dump.  Flapping announcements
    appear in a pseudo-random subset of each day's 12 dumps (seeded, so
    deterministic per collector), modelling short-lived more-specifics.
    The union over a day therefore includes every announcement, while a
    single dump may miss flapping prefixes — matching the paper's
    rationale for merging all 12 dumps.
    """

    def __init__(self, announcements: Sequence[Announcement], seed: int = 0) -> None:
        self._announcements = tuple(announcements)
        self._seed = seed

    def dump(self, day: int, dump_index: int) -> RibSnapshot:
        """The RIB snapshot for ``dump_index`` (0..11) on ``day``."""
        if not 0 <= dump_index < DUMPS_PER_DAY:
            raise ValueError(f"dump index out of range: {dump_index}")
        rng = np.random.default_rng(
            (self._seed, 0x51B, day, dump_index)
        )
        present = []
        for announcement in self._announcements:
            if announcement.stable or rng.random() < 0.5:
                present.append(announcement)
        return RibSnapshot(
            dump_hour=day * 24 + dump_index * 2, table=RoutingTable(present)
        )

    def daily_table(self, day: int) -> RoutingTable:
        """Union of all 12 dumps of ``day`` — the pipeline's input."""
        seen: dict[tuple[Prefix, int], Announcement] = {}
        for dump_index in range(DUMPS_PER_DAY):
            snapshot = self.dump(day, dump_index)
            for announcement in snapshot.table.announcements:
                seen[(announcement.prefix, announcement.origin_asn)] = announcement
        return RoutingTable(seen.values())

    def daily_prefixes(self, day: int) -> list[Prefix]:
        """All prefixes announced at any point during ``day``."""
        return self.daily_table(day).prefixes()
