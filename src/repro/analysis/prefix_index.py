"""Prefix index: share of meta-telescope /24s inside covering prefixes
(paper Section 6.4, Figures 7, 16, 17).

For every announced prefix of a given length (/8 ... /16) the *prefix
index* is the fraction of its /24 blocks inferred as meta-telescope
prefixes.  The paper plots the ECDF of this index per prefix length,
per network type and per continent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.rib import RoutingTable
from repro.net.ipv4 import Prefix


@dataclass(frozen=True, slots=True)
class PrefixIndexEntry:
    """One announced prefix with its dark share."""

    prefix: Prefix
    origin_asn: int
    total_blocks: int
    dark_blocks: int

    @property
    def index(self) -> float:
        """Fraction of the prefix's /24s inferred dark."""
        return self.dark_blocks / self.total_blocks if self.total_blocks else 0.0


def prefix_index_distribution(
    dark_blocks: np.ndarray,
    routing: RoutingTable,
    lengths: tuple[int, ...] = (8, 9, 10, 11, 12, 13, 14, 15, 16),
) -> dict[int, list[PrefixIndexEntry]]:
    """Per-length prefix-index entries for all announced prefixes.

    Only prefixes of the requested lengths are evaluated; each entry
    counts how many of the prefix's /24s appear in ``dark_blocks``.
    """
    dark = np.unique(np.asarray(dark_blocks, dtype=np.int64))
    result: dict[int, list[PrefixIndexEntry]] = {length: [] for length in lengths}
    for announcement in routing.announcements:
        prefix = announcement.prefix
        if prefix.length not in result:
            continue
        first = prefix.first_block()
        count = prefix.num_blocks()
        lo = int(np.searchsorted(dark, first))
        hi = int(np.searchsorted(dark, first + count))
        result[prefix.length].append(
            PrefixIndexEntry(
                prefix=prefix,
                origin_asn=announcement.origin_asn,
                total_blocks=count,
                dark_blocks=hi - lo,
            )
        )
    return result


def index_values_by_group(
    dark_blocks: np.ndarray,
    routing: RoutingTable,
    group_of_asn: dict[int, str],
    lengths: tuple[int, ...] = (8, 9, 10, 11, 12, 13, 14, 15, 16),
) -> dict[str, np.ndarray]:
    """Prefix-index samples grouped by an AS attribute (type/continent).

    The inputs to Figures 16 and 17: one ECDF per group over the
    per-prefix dark shares.
    """
    per_length = prefix_index_distribution(dark_blocks, routing, lengths)
    groups: dict[str, list[float]] = {}
    for entries in per_length.values():
        for entry in entries:
            group = group_of_asn.get(entry.origin_asn)
            if group is None:
                continue
            groups.setdefault(group, []).append(entry.index)
    return {group: np.array(values) for group, values in groups.items()}


def share_exceeding(
    entries: list[PrefixIndexEntry], threshold: float
) -> float:
    """Fraction of prefixes whose index exceeds ``threshold``.

    E.g. the paper's "more than 6.6 % of all /8 announcements have more
    than 5 % meta-telescope address space".
    """
    if not entries:
        return 0.0
    exceeding = sum(1 for entry in entries if entry.index > threshold)
    return exceeding / len(entries)
