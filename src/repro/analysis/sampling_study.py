"""Effect of flow sampling on the inference (paper Section 7.3, Figure 10).

The paper cannot lower its IXPs' sampling rates, so it *raises* them:
sub-sampling the existing flow data by factors 1..200 and re-running
the inference.  Expected shape: the number of inferred prefixes first
*rises* (spoofed pollution thins out faster than scan coverage
degrades), then collapses to zero once scans become invisible; the
false-positive share rises monotonically throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metatelescope import MetaTelescope
from repro.vantage.sampling import VantageDayView
from repro.world.ground_truth import BlockIndex


@dataclass(frozen=True, slots=True)
class SamplingPoint:
    """One x-position of Figure 10."""

    factor: int
    inferred: int
    false_positive_share: float
    sampled_packets: int
    sampled_flows: int


def sampling_sweep(
    views: list[VantageDayView],
    telescope: MetaTelescope,
    index: BlockIndex,
    factors: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 180),
    seed: int = 0,
) -> list[SamplingPoint]:
    """Re-run the inference on progressively sub-sampled views."""
    from repro.core.evaluation import confusion_against_truth  # noqa: PLC0415

    points = []
    for factor in factors:
        rng = np.random.default_rng((seed, factor))
        if factor == 1:
            decimated = views
        else:
            decimated = [view.decimated(factor, rng) for view in views]
        packets = sum(view.flows.total_packets() for view in decimated)
        flows = sum(len(view.flows) for view in decimated)
        if packets == 0:
            points.append(
                SamplingPoint(
                    factor=factor,
                    inferred=0,
                    false_positive_share=0.0,
                    sampled_packets=0,
                    sampled_flows=0,
                )
            )
            continue
        result = telescope.infer(decimated, refine=False)
        confusion = confusion_against_truth(result.pipeline.dark_blocks, index)
        points.append(
            SamplingPoint(
                factor=factor,
                inferred=result.pipeline.num_dark(),
                false_positive_share=confusion.false_positive_rate_of_inferred(),
                sampled_packets=packets,
                sampled_flows=flows,
            )
        )
    return points
