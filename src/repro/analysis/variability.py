"""Day-to-day variability of inferred prefixes (paper Section 7.1, Figure 8)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.combine import per_day_results
from repro.core.metatelescope import MetaTelescope
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True, slots=True)
class DailySeries:
    """One line of Figure 8: per-day inferred counts for a vantage set."""

    label: str
    days: list[int]
    counts: list[int]

    def weekend_uplift(self) -> float:
        """Mean weekend count over mean weekday count (> 1 expected).

        Days are campaign-relative: the paper's week starts Monday
        April 24, so days 5 and 6 are the weekend.
        """
        weekday = [c for d, c in zip(self.days, self.counts) if d % 7 < 5]
        weekend = [c for d, c in zip(self.days, self.counts) if d % 7 >= 5]
        if not weekday or not weekend:
            return float("nan")
        return float(np.mean(weekend) / np.mean(weekday))


def daily_series(
    label: str,
    views_by_day: dict[int, list[VantageDayView]],
    telescope: MetaTelescope,
    use_spoofing_tolerance: bool = False,
) -> DailySeries:
    """Independent per-day inferences for one vantage set."""
    days = sorted(views_by_day)
    counts = []
    for day in days:
        result = telescope.infer(
            views_by_day[day], use_spoofing_tolerance=use_spoofing_tolerance,
            refine=False,
        )
        counts.append(result.pipeline.num_dark())
    return DailySeries(label=label, days=days, counts=counts)


def daily_dark_sets(
    views_by_day: dict[int, list[VantageDayView]],
    telescope: MetaTelescope,
) -> dict[int, np.ndarray]:
    """Per-day inferred dark sets (for stability analyses)."""
    routing = telescope.routing_for_days(sorted(views_by_day))
    results = per_day_results(views_by_day, routing, telescope.config)
    return {day: result.dark_blocks for day, result in results.items()}
