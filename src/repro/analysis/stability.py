"""Stability of the meta-telescope prefix set across days.

Section 9: "Our results show that the set of meta-telescope prefixes
is quite stable for a couple of days.  However, the set ... will vary
when the observation window increases in duration and traffic
conditions change rapidly."  These metrics quantify that claim:
pairwise Jaccard similarity between the daily sets, day-over-day
retention, and the survival curve (how much of day 0's set is still
inferred after k days).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.blocksets import BlockSet


@dataclass(frozen=True)
class StabilityReport:
    """Stability metrics over an ordered sequence of daily dark sets."""

    days: tuple[int, ...]
    jaccard_matrix: np.ndarray
    #: retention[k] = |day_k ∩ day_{k-1}| / |day_{k-1}| (index 0 unused).
    retention: np.ndarray
    #: survival[k] = |day_0 ∩ day_k| / |day_0|.
    survival: np.ndarray

    def adjacent_similarity(self) -> float:
        """Mean Jaccard similarity of consecutive days."""
        values = [
            self.jaccard_matrix[i, i + 1]
            for i in range(len(self.days) - 1)
        ]
        return float(np.mean(values)) if values else 1.0


def stability_report(daily_sets: dict[int, np.ndarray]) -> StabilityReport:
    """Compute the stability metrics for per-day inferred dark sets."""
    if not daily_sets:
        raise ValueError("need at least one day")
    days = tuple(sorted(daily_sets))
    sets = [BlockSet(daily_sets[day]) for day in days]
    size = len(days)
    matrix = np.eye(size)
    for i in range(size):
        for j in range(i + 1, size):
            matrix[i, j] = matrix[j, i] = sets[i].jaccard(sets[j])
    retention = np.ones(size)
    for k in range(1, size):
        previous = sets[k - 1]
        retention[k] = (
            len(previous.intersection(sets[k])) / len(previous)
            if len(previous)
            else 1.0
        )
    survival = np.ones(size)
    first = sets[0]
    for k in range(size):
        survival[k] = (
            len(first.intersection(sets[k])) / len(first) if len(first) else 1.0
        )
    return StabilityReport(
        days=days, jaccard_matrix=matrix, retention=retention, survival=survival
    )
