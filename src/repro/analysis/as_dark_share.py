"""Per-AS dark-space characterisation.

Section 3.3: the paper uses CAIDA's pfx2as "to characterize the
portion of inferred dark address space of individual Autonomous
Systems".  This module produces that characterisation: per-AS counts
of inferred meta-telescope /24s, the share of each AS's announced
space they represent, and organisation-level rollups via as2org.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.rib import RoutingTable
from repro.datasets.as2org import AsToOrgMap
from repro.datasets.pfx2as import PrefixToAsMap


@dataclass(frozen=True, slots=True)
class AsDarkShare:
    """One AS's inferred dark footprint."""

    asn: int
    dark_blocks: int
    announced_blocks: int
    org_name: str | None = None

    @property
    def share(self) -> float:
        """Fraction of the AS's announced space inferred dark."""
        return self.dark_blocks / self.announced_blocks if self.announced_blocks else 0.0


def dark_share_by_as(
    dark_blocks: np.ndarray,
    routing: RoutingTable,
    pfx2as: PrefixToAsMap,
    as2org: AsToOrgMap | None = None,
    min_announced: int = 1,
) -> list[AsDarkShare]:
    """Per-AS dark counts and shares, largest dark footprint first.

    ``routing`` supplies each AS's announced block count (the share's
    denominator); ASes announcing fewer than ``min_announced`` /24s are
    skipped.
    """
    dark = np.unique(np.asarray(dark_blocks, dtype=np.int64))
    dark_asns = pfx2as.asns_of_blocks(dark)
    dark_counts: dict[int, int] = {}
    for asn in dark_asns[dark_asns >= 0]:
        dark_counts[int(asn)] = dark_counts.get(int(asn), 0) + 1

    announced_counts: dict[int, int] = {}
    for announcement in routing.announcements:
        announced_counts[announcement.origin_asn] = (
            announced_counts.get(announcement.origin_asn, 0)
            + announcement.prefix.num_blocks()
        )

    rows = []
    for asn, dark_count in dark_counts.items():
        announced = announced_counts.get(asn, 0)
        if announced < min_announced:
            continue
        org = as2org.org_of(asn) if as2org is not None else None
        rows.append(
            AsDarkShare(
                asn=asn,
                dark_blocks=dark_count,
                # More-specifics overlap their covering announcement;
                # the dark count can therefore not exceed the space.
                announced_blocks=max(announced, dark_count),
                org_name=org.name if org else None,
            )
        )
    rows.sort(key=lambda row: -row.dark_blocks)
    return rows


def top_dark_organizations(
    shares: list[AsDarkShare], count: int = 10
) -> list[tuple[str, int]]:
    """Roll the per-AS footprints up to organisations."""
    totals: dict[str, int] = {}
    for row in shares:
        name = row.org_name or f"AS{row.asn}"
        totals[name] = totals.get(name, 0) + row.dark_blocks
    return sorted(totals.items(), key=lambda item: -item[1])[:count]
