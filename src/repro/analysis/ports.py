"""Destination-port analyses (paper Table 5, Figures 11-12 and 18-20).

All functions consume flow tables of traffic *toward meta-telescope
prefixes* (or telescope captures) and produce port rankings, either
globally or grouped by destination continent / network type — the data
behind the paper's bean plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.flows import FlowTable, aggregate_sums
from repro.traffic.packets import PROTO_TCP


@dataclass(frozen=True, slots=True)
class PortActivity:
    """Packet counts per destination port within one group."""

    group: str
    ports: np.ndarray
    packets: np.ndarray

    def share_of(self, port: int) -> float:
        """This port's share of the group's packets."""
        total = self.packets.sum()
        if total == 0:
            return 0.0
        mask = self.ports == port
        return float(self.packets[mask].sum() / total)

    def rank_of(self, port: int) -> int | None:
        """1-based popularity rank of ``port`` in the group, or None."""
        order = np.argsort(-self.packets, kind="stable")
        ranked = self.ports[order]
        positions = np.flatnonzero(ranked == port)
        return int(positions[0]) + 1 if len(positions) else None


def port_packet_counts(flows: FlowTable, tcp_only: bool = True) -> PortActivity:
    """Aggregate packets per destination port."""
    table = flows.tcp() if tcp_only else flows
    if len(table) == 0:
        return PortActivity(
            group="all",
            ports=np.empty(0, dtype=np.int64),
            packets=np.empty(0, dtype=np.int64),
        )
    ports, (packets,) = aggregate_sums(table.dport.astype(np.int64), table.packets)
    return PortActivity(group="all", ports=ports, packets=packets)


def top_ports(flows: FlowTable, count: int = 10, tcp_only: bool = True) -> list[int]:
    """The ``count`` most targeted TCP ports, descending (Table 5)."""
    activity = port_packet_counts(flows, tcp_only=tcp_only)
    order = np.argsort(-activity.packets, kind="stable")
    return [int(p) for p in activity.ports[order][:count]]


def port_activity_by_group(
    flows: FlowTable,
    group_of_block: dict[int, str],
    tcp_only: bool = True,
) -> dict[str, PortActivity]:
    """Per-group port activity (group = continent or network type).

    ``group_of_block`` maps destination /24 block ids to group labels;
    unmapped blocks are skipped.
    """
    table = flows.tcp() if tcp_only else flows
    groups: dict[str, PortActivity] = {}
    if len(table) == 0:
        return groups
    dst_blocks = table.dst_blocks()
    labels = np.array(
        [group_of_block.get(int(b), "") for b in dst_blocks], dtype=object
    )
    for group in sorted({label for label in labels if label}):
        mask = labels == group
        ports, (packets,) = aggregate_sums(
            table.dport[mask].astype(np.int64), table.packets[mask]
        )
        groups[group] = PortActivity(group=group, ports=ports, packets=packets)
    return groups


def top_ports_per_group(
    activity_by_group: dict[str, PortActivity], per_group: int = 10
) -> list[int]:
    """Union of each group's top ports, ordered by total popularity.

    This is how the paper builds its top-16 (by region) and top-12
    (by type) bean-plot port lists: take each group's top list, join
    them, and order by overall activity.
    """
    union: set[int] = set()
    for activity in activity_by_group.values():
        order = np.argsort(-activity.packets, kind="stable")
        union.update(int(p) for p in activity.ports[order][:per_group])
    totals: dict[int, float] = {port: 0.0 for port in union}
    for activity in activity_by_group.values():
        for port in union:
            mask = activity.ports == port
            totals[port] += float(activity.packets[mask].sum())
    return sorted(union, key=lambda port: -totals[port])


def bean_matrix(
    activity_by_group: dict[str, PortActivity],
    ports: list[int],
    relative_to: str = "group",
) -> tuple[list[str], np.ndarray]:
    """Port x group share matrix backing the bean plots.

    ``relative_to='group'`` normalises within each group (Figures
    11/12); ``'overall'`` normalises by total traffic (Figure 18).
    Returns (group labels, matrix[len(ports), len(groups)]).
    """
    groups = sorted(activity_by_group)
    matrix = np.zeros((len(ports), len(groups)))
    overall = sum(a.packets.sum() for a in activity_by_group.values())
    for column, group in enumerate(groups):
        activity = activity_by_group[group]
        denominator = (
            activity.packets.sum() if relative_to == "group" else overall
        )
        if denominator == 0:
            continue
        for row, port in enumerate(ports):
            mask = activity.ports == port
            matrix[row, column] = activity.packets[mask].sum() / denominator
    return groups, matrix


def traffic_toward(flows: FlowTable, blocks: np.ndarray) -> FlowTable:
    """Convenience: restrict flows to destinations inside ``blocks``."""
    return flows.toward_blocks(blocks)


def tcp_share(flows: FlowTable) -> float:
    """Fraction of packets that are TCP (Table 2 column)."""
    total = flows.total_packets()
    if total == 0:
        return 0.0
    return flows.filter(flows.proto == PROTO_TCP).total_packets() / total
