"""Scanner characterisation from meta-telescope traffic.

The meta-telescope's operator wants to know *who* is scanning: the
source addresses fanning out across dark space, their footprint (how
many /24s they touch), their port sets (a {23, 2222, 60023}-style set
is a Mirai-family fingerprint), and the networks they sit in — the
input for the per-customer notifications of the paper's Section 9.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.traffic.flows import FlowTable, aggregate_sums


@dataclass(frozen=True, slots=True)
class ScannerReport:
    """One inferred scanning source."""

    source_ip: int
    sender_asn: int
    packets: int
    #: Distinct dark /24s probed (footprint).
    footprint_blocks: int
    #: Destination ports, most-targeted first.
    ports: tuple[int, ...]

    def is_heavy(self, footprint_threshold: int = 50) -> bool:
        """Wide-footprint (Internet-wide style) scanner?"""
        return self.footprint_blocks >= footprint_threshold


def detect_scanners(
    captured: FlowTable,
    min_footprint_blocks: int = 5,
    max_ports: int = 6,
) -> list[ScannerReport]:
    """Characterise scanning sources in meta-telescope traffic.

    A source qualifies when its TCP probes on *service* destination
    ports (< 1024 or well-known high ports — i.e. a concentrated port
    set, the complement of the backscatter detector's dispersion test)
    reach at least ``min_footprint_blocks`` distinct dark /24s.
    """
    tcp = captured.tcp()
    if len(tcp) == 0:
        return []
    src = tcp.src_ip.astype(np.int64)
    src_ips, (packets,) = aggregate_sums(src, tcp.packets)

    # Footprint per source.
    pair_keys = (src << np.int64(24)) | (tcp.dst_blocks() & 0xFFFFFF)
    unique_pairs = np.unique(pair_keys)
    footprint = np.bincount(
        np.searchsorted(src_ips, unique_pairs >> 24), minlength=len(src_ips)
    )

    # Port concentration: per (source, dport) packets.
    port_keys = (src << np.int64(16)) | tcp.dport.astype(np.int64)
    pairs, (pair_packets,) = aggregate_sums(port_keys, tcp.packets)
    pair_owner = np.searchsorted(src_ips, pairs >> 16)
    distinct_ports = np.bincount(pair_owner, minlength=len(src_ips))
    modal = np.zeros(len(src_ips), dtype=np.int64)
    np.maximum.at(modal, pair_owner, pair_packets)
    concentrated = (modal / np.maximum(packets, 1) > 0.5) | (
        distinct_ports <= max_ports
    )

    sender_by_src = {}
    for ip, asn in zip(tcp.src_ip.tolist(), tcp.sender_asn.tolist()):
        sender_by_src.setdefault(int(ip), int(asn))

    reports = []
    qualifying = (footprint >= min_footprint_blocks) & concentrated
    for index in np.flatnonzero(qualifying):
        ip = int(src_ips[index])
        mask = pair_owner == index
        port_list = sorted(
            zip(pairs[mask] & 0xFFFF, pair_packets[mask]),
            key=lambda item: -item[1],
        )
        reports.append(
            ScannerReport(
                source_ip=ip,
                sender_asn=sender_by_src.get(ip, -1),
                packets=int(packets[index]),
                footprint_blocks=int(footprint[index]),
                ports=tuple(int(p) for p, _ in port_list),
            )
        )
    reports.sort(key=lambda r: -r.footprint_blocks)
    return reports


#: Port-set fingerprints of known campaign families.
CAMPAIGN_FINGERPRINTS: dict[str, frozenset[int]] = {
    "mirai-family": frozenset({23, 2222, 60023, 5555, 8080}),
    "satori": frozenset({37215, 52869}),
    "database-hunting": frozenset({6379, 3306, 5038}),
    "web-recon": frozenset({80, 443, 8080, 8443, 81, 8090}),
    "remote-access": frozenset({22, 3389, 2375}),
}


def classify_campaign(report: ScannerReport) -> str | None:
    """Match a scanner's port set against known campaign fingerprints.

    Returns the family whose fingerprint overlaps the scanner's ports
    the most (ties broken by fingerprint size), or None if nothing
    overlaps.
    """
    ports = set(report.ports)
    best: tuple[float, int, str] | None = None
    for family, fingerprint in CAMPAIGN_FINGERPRINTS.items():
        overlap = len(ports & fingerprint)
        if overlap == 0:
            continue
        score = overlap / len(ports)
        key = (score, -len(fingerprint), family)
        if best is None or key > best:
            best = key
    return best[2] if best else None


def campaign_summary(reports: list[ScannerReport]) -> dict[str, int]:
    """Count inferred scanners per campaign family."""
    counter: Counter[str] = Counter()
    for report in reports:
        family = classify_campaign(report)
        counter[family if family else "unclassified"] += 1
    return dict(counter.most_common())
