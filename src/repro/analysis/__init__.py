"""Analyses of meta-telescope data (the paper's Sections 6-8)."""

from repro.analysis.ports import (
    PortActivity,
    port_activity_by_group,
    top_ports,
    top_ports_per_group,
)
from repro.analysis.geo_dist import country_counts, continent_counts
from repro.analysis.nettypes import type_continent_matrix
from repro.analysis.prefix_index import prefix_index_distribution
from repro.analysis.hilbert_viz import render_hilbert_ascii, hilbert_grid
from repro.analysis.variability import daily_series
from repro.analysis.sampling_study import sampling_sweep
from repro.analysis.backscatter_analysis import BackscatterAnalysis, detect_victims
from repro.analysis.scanners_analysis import (
    ScannerReport,
    campaign_summary,
    classify_campaign,
    detect_scanners,
)
from repro.analysis.as_dark_share import dark_share_by_as, top_dark_organizations
from repro.analysis.comparison import PortComparison, compare_port_statistics
from repro.analysis.stability import StabilityReport, stability_report

__all__ = [
    "PortActivity",
    "port_activity_by_group",
    "top_ports",
    "top_ports_per_group",
    "country_counts",
    "continent_counts",
    "type_continent_matrix",
    "prefix_index_distribution",
    "render_hilbert_ascii",
    "hilbert_grid",
    "daily_series",
    "sampling_sweep",
    "BackscatterAnalysis",
    "detect_victims",
    "ScannerReport",
    "campaign_summary",
    "classify_campaign",
    "detect_scanners",
    "dark_share_by_as",
    "top_dark_organizations",
    "PortComparison",
    "compare_port_statistics",
    "StabilityReport",
    "stability_report",
]
