"""Backscatter analysis: inferring DDoS victims from meta-telescope traffic.

One of the classic telescope applications the paper's introduction
cites (Moore et al., "Inferring Internet Denial-of-Service Activity"):
victims of randomly-spoofed floods answer the fake sources, so their
replies rain onto dark space.  At a meta-telescope, backscatter shows
up as TCP traffic from a *fixed source (victim) service port* toward
many dark /24s on *ephemeral destination ports* — the mirror image of
scanning, which fans out across destinations on a fixed destination
port.

The detector below separates the two patterns and estimates per-victim
attack magnitude, exactly what an operator would hand to a CERT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.flows import FlowTable, aggregate_sums

#: Ports below this are "service" ports; backscatter destination ports
#: are ephemeral (the spoofer picked them randomly).
EPHEMERAL_PORT_FLOOR = 1024


@dataclass(frozen=True, slots=True)
class VictimReport:
    """One inferred DDoS victim."""

    victim_ip: int
    #: Distinct dark /24s that received its backscatter.
    spread_blocks: int
    #: Sampled backscatter packets observed.
    packets: int

    def estimated_attack_share(self, total_packets: int) -> float:
        """This victim's share of all observed backscatter."""
        return self.packets / total_packets if total_packets else 0.0


@dataclass(frozen=True)
class BackscatterAnalysis:
    """Outcome of the victim inference."""

    victims: list[VictimReport]
    backscatter_packets: int
    total_packets: int

    def backscatter_share(self) -> float:
        """Backscatter's share of the meta-telescope's traffic."""
        return (
            self.backscatter_packets / self.total_packets
            if self.total_packets
            else 0.0
        )


def detect_victims(
    captured: FlowTable,
    min_spread_blocks: int = 3,
    min_packets: int = 3,
    max_modal_port_share: float = 0.5,
) -> BackscatterAnalysis:
    """Infer DDoS victims from traffic captured at the meta-telescope.

    ``captured`` is the traffic toward inferred dark space (the
    operator's data product (b)).  A source qualifies as a victim when
    its TCP traffic on ephemeral destination ports reaches at least
    ``min_spread_blocks`` distinct dark /24s with at least
    ``min_packets`` sampled packets, *and* those destination ports are
    dispersed (spoofers pick them randomly).  The dispersion test —
    the most common dport carries at most ``max_modal_port_share`` of
    the source's packets — separates backscatter from scanners that
    happen to probe high ports (8080, 37215, ...).
    """
    total_packets = captured.total_packets()
    tcp = captured.tcp()
    ephemeral = tcp.filter(tcp.dport >= EPHEMERAL_PORT_FLOOR)
    if len(ephemeral) == 0:
        return BackscatterAnalysis(
            victims=[], backscatter_packets=0, total_packets=total_packets
        )

    src_ips, (packets,) = aggregate_sums(
        ephemeral.src_ip.astype(np.int64), ephemeral.packets
    )
    # Spread: distinct destination /24s per source.
    pair_keys = (ephemeral.src_ip.astype(np.int64) << np.int64(24)) | (
        ephemeral.dst_blocks() & 0xFFFFFF
    )
    unique_pairs = np.unique(pair_keys)
    spread_src = unique_pairs >> 24
    spread_counts = np.bincount(
        np.searchsorted(src_ips, spread_src), minlength=len(src_ips)
    )
    # Port dispersion: the modal destination port's packet share.
    port_keys = (ephemeral.src_ip.astype(np.int64) << np.int64(16)) | (
        ephemeral.dport.astype(np.int64)
    )
    pairs, (pair_packets,) = aggregate_sums(port_keys, ephemeral.packets)
    modal = np.zeros(len(src_ips), dtype=np.int64)
    np.maximum.at(
        modal, np.searchsorted(src_ips, pairs >> 16), pair_packets
    )
    modal_share = modal / np.maximum(packets, 1)

    victims = [
        VictimReport(
            victim_ip=int(ip),
            spread_blocks=int(spread),
            packets=int(pkts),
        )
        for ip, spread, pkts, share in zip(
            src_ips, spread_counts, packets, modal_share
        )
        if spread >= min_spread_blocks
        and pkts >= min_packets
        and share <= max_modal_port_share
    ]
    victims.sort(key=lambda v: -v.packets)
    backscatter_packets = sum(v.packets for v in victims)
    return BackscatterAnalysis(
        victims=victims,
        backscatter_packets=backscatter_packets,
        total_packets=total_packets,
    )
