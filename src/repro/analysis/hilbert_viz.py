"""Hilbert-map rendering of inferred dark space (paper Figures 3, 5, 6).

The maps are rendered as text grids (one character per /24 for small
curves, or density-downsampled for large ones) plus PGM images for
tooling that wants pixels.  The precision statistic the paper reads off
Figure 3 — how many coloured pixels fall inside the known telescope's
box — is computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.hilbert import HilbertCurve
from repro.net.ipv4 import Prefix


@dataclass(frozen=True, slots=True)
class HilbertMap:
    """A rendered Hilbert view of one covering prefix."""

    base: Prefix
    grid: np.ndarray  # (side, side) ints: 0 empty, 1 dark, 2 reference

    def dark_pixels(self) -> int:
        """Number of inferred-dark cells."""
        return int((self.grid == 1).sum())


def hilbert_grid(
    base: Prefix,
    dark_blocks: np.ndarray,
    reference_blocks: np.ndarray | None = None,
) -> HilbertMap:
    """Rasterise dark (and optional reference) blocks under ``base``.

    Cells default to 0; inferred-dark blocks become 1; reference-only
    blocks (e.g. a known telescope's extent) become 2; blocks that are
    both stay 1 (dark wins, like the paper's colour overlay).
    """
    curve = HilbertCurve.for_prefix(base)
    first = base.first_block()
    last = first + base.num_blocks() - 1

    def inside(blocks: np.ndarray) -> np.ndarray:
        blocks = np.asarray(blocks, dtype=np.int64)
        return blocks[(blocks >= first) & (blocks <= last)]

    grid = np.zeros((curve.side, curve.side), dtype=np.int64)
    if reference_blocks is not None:
        ref = inside(reference_blocks)
        if len(ref):
            x, y = curve.d2xy_array(ref - first)
            grid[y, x] = 2
    dark = inside(dark_blocks)
    if len(dark):
        x, y = curve.d2xy_array(dark - first)
        grid[y, x] = 1
    return HilbertMap(base=base, grid=grid)


def precision_inside_reference(
    base: Prefix, dark_blocks: np.ndarray, reference_blocks: np.ndarray
) -> tuple[int, int]:
    """(dark pixels inside the reference, dark pixels outside).

    Figure 3's headline: "almost all blue pixels fall within this
    area ... a few, i.e. 5, outside".
    """
    first = base.first_block()
    last = first + base.num_blocks() - 1
    dark = np.asarray(dark_blocks, dtype=np.int64)
    dark = dark[(dark >= first) & (dark <= last)]
    inside = np.isin(dark, np.asarray(reference_blocks, dtype=np.int64))
    return int(inside.sum()), int((~inside).sum())


def render_hilbert_ascii(
    hilbert_map: HilbertMap, max_side: int = 64
) -> str:
    """Character rendering: '#' dark, '.' reference-only, ' ' empty.

    Grids larger than ``max_side`` are density-downsampled; a cell
    shows '#' if any constituent pixel is dark.
    """
    grid = hilbert_map.grid
    side = grid.shape[0]
    if side > max_side:
        step = side // max_side
        trimmed = grid[: max_side * step, : max_side * step]
        pooled = trimmed.reshape(max_side, step, max_side, step)
        dark = (pooled == 1).any(axis=(1, 3))
        reference = (pooled == 2).any(axis=(1, 3))
        grid = np.where(dark, 1, np.where(reference, 2, 0))
    symbols = np.array([" ", "#", "."])
    return "\n".join("".join(row) for row in symbols[grid])


def write_pgm(hilbert_map: HilbertMap, path: str) -> None:
    """Write the map as a binary PGM (0 empty / 128 reference / 255 dark)."""
    grid = hilbert_map.grid
    pixels = np.where(grid == 1, 255, np.where(grid == 2, 128, 0)).astype(np.uint8)
    header = f"P5\n{grid.shape[1]} {grid.shape[0]}\n255\n".encode()
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(pixels.tobytes())
