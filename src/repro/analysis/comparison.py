"""Comparing meta-telescope traffic against operational telescopes.

The paper's evaluation step (ii) in Section 4.3: "compare port count
statistics from the traffic we observe towards our inferred dark
prefixes against traffic observed at operational telescopes", finding
"a perfect overlap for the top ports".  This module quantifies that
comparison: top-k overlap, rank agreement (Spearman over the shared
ports), and distribution distance over port shares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.analysis.ports import PortActivity, port_packet_counts
from repro.traffic.flows import FlowTable


@dataclass(frozen=True, slots=True)
class PortComparison:
    """Similarity of two vantage points' port statistics."""

    top_k: int
    overlap: int
    spearman_rho: float
    l1_distance: float

    def overlap_share(self) -> float:
        """Fraction of the top-k lists that coincide."""
        return self.overlap / self.top_k if self.top_k else 0.0


def compare_port_statistics(
    left: FlowTable, right: FlowTable, top_k: int = 10
) -> PortComparison:
    """Compare two traffic captures' TCP port statistics.

    * ``overlap``: size of the intersection of the two top-k lists;
    * ``spearman_rho``: rank correlation of packet counts over the
      union of both top-k lists (ports missing on one side count 0);
    * ``l1_distance``: total variation distance between the two port
      share distributions over that union (0 identical .. 1 disjoint).
    """
    left_activity = port_packet_counts(left)
    right_activity = port_packet_counts(right)
    left_top = _top_list(left_activity, top_k)
    right_top = _top_list(right_activity, top_k)
    overlap = len(set(left_top) & set(right_top))

    union = sorted(set(left_top) | set(right_top))
    if len(union) < 2:
        rho = 1.0 if union else 0.0
    else:
        left_counts = [_count_of(left_activity, port) for port in union]
        right_counts = [_count_of(right_activity, port) for port in union]
        rho = float(stats.spearmanr(left_counts, right_counts).statistic)
    left_shares = _shares(left_activity, union)
    right_shares = _shares(right_activity, union)
    l1 = float(np.abs(left_shares - right_shares).sum() / 2)
    return PortComparison(
        top_k=top_k, overlap=overlap, spearman_rho=rho, l1_distance=l1
    )


def _top_list(activity: PortActivity, top_k: int) -> list[int]:
    order = np.argsort(-activity.packets, kind="stable")
    return [int(p) for p in activity.ports[order][:top_k]]


def _count_of(activity: PortActivity, port: int) -> int:
    mask = activity.ports == port
    return int(activity.packets[mask].sum())


def _shares(activity: PortActivity, ports: list[int]) -> np.ndarray:
    counts = np.array([_count_of(activity, port) for port in ports], dtype=float)
    total = counts.sum()
    return counts / total if total else counts
