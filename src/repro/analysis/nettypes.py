"""Network-type breakdown of meta-telescope prefixes (paper Table 7)."""

from __future__ import annotations

import numpy as np

from repro.bgp.asinfo import ASType
from repro.datasets.geodb import GeoDatabase
from repro.datasets.ipinfo import AsClassification
from repro.datasets.pfx2as import PrefixToAsMap
from repro.geo.countries import Continent

#: Row order of Table 7.
TABLE7_CONTINENTS: tuple[str, ...] = ("NA", "SA", "EU", "AS", "AF", "OC", "INT")
#: Column order of Table 7.
TABLE7_TYPES: tuple[ASType, ...] = (
    ASType.ISP,
    ASType.ENTERPRISE,
    ASType.EDUCATION,
    ASType.DATA_CENTER,
)


def type_continent_matrix(
    blocks: np.ndarray,
    geodb: GeoDatabase,
    pfx2as: PrefixToAsMap,
    ipinfo: AsClassification,
) -> dict[str, dict[str, int]]:
    """Counts of meta-telescope /24s per continent x network type.

    Returns ``{continent: {"Total": n, "ISP": ..., ...}}`` with an
    extra ``"All"`` row, matching Table 7's layout.  Blocks whose AS or
    country cannot be resolved are skipped, like the paper's
    unmappable prefixes.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    codes = geodb.lookup(blocks)
    asns = pfx2as.asns_of_blocks(blocks)
    result: dict[str, dict[str, int]] = {
        continent: {"Total": 0, **{t.value: 0 for t in TABLE7_TYPES}}
        for continent in ("All", *TABLE7_CONTINENTS)
    }
    from repro.geo.countries import country_by_code  # noqa: PLC0415

    for code, asn in zip(codes, asns):
        if code == "??" or asn < 0:
            continue
        as_type = ipinfo.type_of(int(asn))
        if as_type is None:
            continue
        continent = country_by_code(str(code)).continent.value
        for row in ("All", continent):
            result[row]["Total"] += 1
            result[row][as_type.value] += 1
    return result


def dark_share_by_type(
    dark_blocks: np.ndarray,
    all_blocks: np.ndarray,
    pfx2as: PrefixToAsMap,
    ipinfo: AsClassification,
) -> dict[str, float]:
    """Fraction of each network type's announced space inferred dark.

    The quantity behind Figure 16: data centers should show the
    smallest share (young, densely used allocations).
    """
    dark = np.unique(np.asarray(dark_blocks, dtype=np.int64))
    universe = np.unique(np.asarray(all_blocks, dtype=np.int64))
    universe_types = ipinfo.types_of(pfx2as.asns_of_blocks(universe))
    dark_mask = np.isin(universe, dark)
    shares: dict[str, float] = {}
    labels = np.array(
        [t.value if t is not None else "" for t in universe_types], dtype=object
    )
    for as_type in TABLE7_TYPES:
        mask = labels == as_type.value
        total = int(mask.sum())
        shares[as_type.value] = (
            float(dark_mask[mask].sum() / total) if total else 0.0
        )
    return shares


def continent_of_blocks(
    blocks: np.ndarray, geodb: GeoDatabase
) -> list[Continent | None]:
    """Continent per block via the geolocation database."""
    return geodb.continents(np.asarray(blocks, dtype=np.int64))
