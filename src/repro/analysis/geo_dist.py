"""Geographic distribution of meta-telescope prefixes (Figures 4, 13-15;
the country/AS columns of Table 6)."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.datasets.geodb import GeoDatabase
from repro.datasets.pfx2as import PrefixToAsMap
from repro.geo.countries import Continent, country_by_code


def country_counts(
    blocks: np.ndarray, geodb: GeoDatabase
) -> dict[str, int]:
    """Number of meta-telescope /24s per country code (Figure 4 data)."""
    codes = geodb.lookup(np.asarray(blocks, dtype=np.int64))
    counter = Counter(str(code) for code in codes if code != "??")
    return dict(sorted(counter.items(), key=lambda item: -item[1]))


def continent_counts(
    blocks: np.ndarray, geodb: GeoDatabase
) -> dict[str, int]:
    """Number of meta-telescope /24s per continent."""
    per_country = country_counts(blocks, geodb)
    counter: Counter[str] = Counter()
    for code, count in per_country.items():
        counter[country_by_code(code).continent.value] += count
    return dict(
        sorted(counter.items(), key=lambda item: -item[1])
    )


def inventory_row(
    blocks: np.ndarray, geodb: GeoDatabase, pfx2as: PrefixToAsMap
) -> tuple[int, int, int]:
    """(num prefixes, num ASes, num countries) — one Table 6 row."""
    blocks = np.asarray(blocks, dtype=np.int64)
    asns = pfx2as.asns_of_blocks(blocks)
    num_ases = len(np.unique(asns[asns >= 0]))
    num_countries = len(country_counts(blocks, geodb))
    return len(blocks), num_ases, num_countries


def log_scale_world_counts(counts: dict[str, int]) -> dict[str, float]:
    """log10 country counts, the color scale of the world maps."""
    return {
        code: float(np.log10(count)) for code, count in counts.items() if count > 0
    }


def continent_of_country(code: str) -> Continent:
    """Continent for a country code (registry lookup)."""
    return country_by_code(code).continent
