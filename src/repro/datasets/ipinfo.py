"""IPInfo-style AS business classification (ISP / Enterprise /
Education / Data Center), with a small labelling error rate."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.asinfo import ASRegistry, ASType

_AS_TYPES = tuple(ASType)


@dataclass(frozen=True)
class AsClassification:
    """ASN -> business category, as the commercial dataset provides."""

    mapping: dict[int, ASType]

    @classmethod
    def from_registry(
        cls,
        registry: ASRegistry,
        error_rate: float,
        rng: np.random.Generator,
    ) -> "AsClassification":
        """Noisy copy of the ground-truth AS types."""
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate out of range: {error_rate}")
        mapping: dict[int, ASType] = {}
        for autonomous_system in registry:
            label = autonomous_system.as_type
            # Commercial classifiers get the big, well-known networks
            # right; labelling errors concentrate on small ASes.
            small = autonomous_system.num_announced_blocks() < 256
            if small and rng.random() < error_rate:
                label = _AS_TYPES[int(rng.integers(0, len(_AS_TYPES)))]
            mapping[autonomous_system.asn] = label
        return cls(mapping=mapping)

    def type_of(self, asn: int) -> ASType | None:
        """Business category of ``asn``, or None if unknown."""
        return self.mapping.get(asn)

    def types_of(self, asns: np.ndarray) -> list[ASType | None]:
        """Vector lookup over an ASN array."""
        return [self.mapping.get(int(asn)) for asn in np.asarray(asns)]
