"""Liveness observers: Censys-, NDT- and ISI-style activity datasets.

Each dataset reports the set of /24 blocks in which it saw at least one
active address.  Recall is below one (a scanner misses firewalled
hosts; NDT only sees speed-testing eyeballs) and a small share of
entries is stale (a block active when the snapshot was taken but dark
during the measurement week).  The paper uses the union of the three as
a *lower bound* on activity to (a) estimate false positives and
(b) refine the final prefix list (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class LivenessDataset:
    """A named set of /24 blocks observed to contain active addresses."""

    name: str
    active_blocks: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "active_blocks",
            np.unique(np.asarray(self.active_blocks, dtype=np.int64)),
        )

    def __len__(self) -> int:
        return len(self.active_blocks)

    def contains(self, blocks: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``blocks`` this dataset marks active."""
        return np.isin(np.asarray(blocks, dtype=np.int64), self.active_blocks)

    @classmethod
    def observe(
        cls,
        name: str,
        truly_active_blocks: np.ndarray,
        truly_dark_blocks: np.ndarray,
        recall: float,
        stale_rate: float,
        rng: np.random.Generator,
    ) -> "LivenessDataset":
        """Build an imperfect observer of the ground truth.

        ``recall`` is the probability an active block is listed;
        ``stale_rate`` the probability a dark block appears anyway
        (an address that answered when the snapshot was taken).
        """
        if not 0.0 <= recall <= 1.0:
            raise ValueError(f"recall out of range: {recall}")
        if not 0.0 <= stale_rate <= 1.0:
            raise ValueError(f"stale_rate out of range: {stale_rate}")
        active = np.asarray(truly_active_blocks, dtype=np.int64)
        dark = np.asarray(truly_dark_blocks, dtype=np.int64)
        seen = active[rng.random(len(active)) < recall]
        stale = dark[rng.random(len(dark)) < stale_rate]
        return cls(name=name, active_blocks=np.concatenate([seen, stale]))


def union_liveness(datasets: list[LivenessDataset]) -> LivenessDataset:
    """The union the paper's refinement step uses (Censys ∪ NDT ∪ ISI)."""
    if not datasets:
        raise ValueError("need at least one liveness dataset")
    merged = np.unique(np.concatenate([d.active_blocks for d in datasets]))
    name = "+".join(d.name for d in datasets)
    return LivenessDataset(name=name, active_blocks=merged)
