"""CAIDA-style prefix-to-AS mapping, derived from daily RIB snapshots."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.rib import RoutingTable
from repro.net.ipv4 import Prefix
from repro.net.trie import PrefixTrie


@dataclass
class PrefixToAsMap:
    """Longest-prefix-match map from address space to origin ASN.

    Lookups are vectorised per prefix length: for a query block we probe
    each announced length from most to least specific and keep the first
    hit — the standard longest-prefix-match semantics of CAIDA pfx2as.
    """

    trie: PrefixTrie
    _levels: list[tuple[int, np.ndarray, np.ndarray]] = field(
        default_factory=list, repr=False
    )

    @classmethod
    def from_routing_table(cls, table: RoutingTable) -> "PrefixToAsMap":
        """Build from a daily RIB union, mirroring CAIDA's pipeline."""
        trie: PrefixTrie[int] = PrefixTrie()
        by_length: dict[int, list[tuple[int, int]]] = {}
        for announcement in table.announcements:
            prefix = announcement.prefix
            trie.insert(prefix, announcement.origin_asn)
            if prefix.length <= 24:
                by_length.setdefault(prefix.length, []).append(
                    (prefix.network >> (32 - prefix.length), announcement.origin_asn)
                )
        levels = []
        for length in sorted(by_length, reverse=True):  # most specific first
            rows = sorted(by_length[length])
            keys = np.array([key for key, _ in rows], dtype=np.int64)
            asns = np.array([asn for _, asn in rows], dtype=np.int64)
            levels.append((length, keys, asns))
        instance = cls(trie=trie)
        instance._levels = levels
        return instance

    def asn_of_block(self, block: int) -> int | None:
        """Origin ASN for a /24 block, or None if unmapped."""
        match = self.trie.longest_match(block << 8)
        return None if match is None else match[1]

    def asns_of_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorised longest-prefix-match; -1 for unmapped blocks."""
        queried = np.asarray(blocks, dtype=np.int64)
        result = np.full(len(queried), -1, dtype=np.int64)
        unresolved = np.ones(len(queried), dtype=bool)
        for length, keys, asns in self._levels:
            if not unresolved.any() or len(keys) == 0:
                break
            truncated = queried >> (24 - length)
            index = np.searchsorted(keys, truncated)
            index = np.clip(index, 0, len(keys) - 1)
            hit = unresolved & (keys[index] == truncated)
            result[hit] = asns[index[hit]]
            unresolved &= ~hit
        return result

    def mapped_prefixes(self) -> list[tuple[Prefix, int]]:
        """All (prefix, origin) pairs."""
        return list(self.trie.items())
