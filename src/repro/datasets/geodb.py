"""Country-level IP geolocation (MaxMind GeoLite2 style).

Maps /24 blocks to two-letter country codes.  Built from the world's
ground truth with a configurable per-block error rate, since commercial
geolocation is imperfect at country granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.countries import COUNTRIES, Continent, country_by_code


@dataclass(frozen=True, slots=True)
class GeoDatabase:
    """Sorted /24 block ids with aligned country codes."""

    blocks: np.ndarray
    country_codes: np.ndarray  # array of 2-char strings, aligned with blocks

    def __post_init__(self) -> None:
        blocks = np.asarray(self.blocks, dtype=np.int64)
        codes = np.asarray(self.country_codes)
        if len(blocks) != len(codes):
            raise ValueError("blocks and country codes must align")
        order = np.argsort(blocks, kind="stable")
        object.__setattr__(self, "blocks", blocks[order])
        object.__setattr__(self, "country_codes", codes[order])

    def lookup(self, blocks: np.ndarray) -> np.ndarray:
        """Country codes for ``blocks``; '??' for unknown blocks."""
        queried = np.asarray(blocks, dtype=np.int64)
        index = np.searchsorted(self.blocks, queried)
        index = np.clip(index, 0, max(len(self.blocks) - 1, 0))
        result = np.full(len(queried), "??", dtype=self.country_codes.dtype)
        if len(self.blocks):
            hit = self.blocks[index] == queried
            result[hit] = self.country_codes[index[hit]]
        return result

    def continents(self, blocks: np.ndarray) -> list[Continent | None]:
        """Continent per block (None when unknown)."""
        out: list[Continent | None] = []
        for code in self.lookup(blocks):
            if code == "??":
                out.append(None)
            else:
                out.append(country_by_code(str(code)).continent)
        return out

    @classmethod
    def from_ground_truth(
        cls,
        blocks: np.ndarray,
        true_codes: np.ndarray,
        error_rate: float,
        rng: np.random.Generator,
    ) -> "GeoDatabase":
        """A noisy copy of the ground-truth mapping."""
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate out of range: {error_rate}")
        codes = np.asarray(true_codes).copy()
        wrong = rng.random(len(codes)) < error_rate
        if wrong.any():
            pool = np.array([c.code for c in COUNTRIES], dtype=codes.dtype)
            codes[wrong] = rng.choice(pool, size=int(wrong.sum()))
        return cls(blocks=np.asarray(blocks, dtype=np.int64), country_codes=codes)
