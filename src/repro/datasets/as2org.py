"""CAIDA-style AS-to-organisation mapping."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.asinfo import ASRegistry, Organization


@dataclass(frozen=True)
class AsToOrgMap:
    """ASN -> organisation, as the paper's as2org dataset provides."""

    mapping: dict[int, Organization]

    @classmethod
    def from_registry(cls, registry: ASRegistry) -> "AsToOrgMap":
        """Derive the mapping from a world's AS registry."""
        return cls(
            mapping={
                autonomous_system.asn: registry.org(autonomous_system.org_id)
                for autonomous_system in registry
            }
        )

    def org_of(self, asn: int) -> Organization | None:
        """The organisation operating ``asn``, or None if unknown."""
        return self.mapping.get(asn)

    def num_organizations(self) -> int:
        """Number of distinct organisations."""
        return len({org.org_id for org in self.mapping.values()})
