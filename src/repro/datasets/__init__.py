"""Auxiliary datasets: liveness observers, geolocation, AS metadata.

These emulate the paper's third-party data sources (Section 3.3):
Censys / M-Lab NDT / ISI address history for liveness, MaxMind GeoLite2
for country-level geolocation, CAIDA pfx2as and as2org for routing and
organisation metadata, and IPInfo for AS business classification.
Each emulator observes the world's ground truth *imperfectly* — with
recall below one and small error rates — because the paper's
refinement step explicitly treats them as lower bounds on activity.
"""

from repro.datasets.liveness import LivenessDataset
from repro.datasets.geodb import GeoDatabase
from repro.datasets.pfx2as import PrefixToAsMap
from repro.datasets.as2org import AsToOrgMap
from repro.datasets.ipinfo import AsClassification

__all__ = [
    "LivenessDataset",
    "GeoDatabase",
    "PrefixToAsMap",
    "AsToOrgMap",
    "AsClassification",
]
