"""Adversarial scenario catalog and expected-degradation envelopes.

The regression gate for "does the pipeline still degrade the way we
expect under attack": :mod:`repro.robustness.catalog` declares the
scenarios (who the adversary is, what they target, what they are
allowed to break), :mod:`repro.robustness.envelope` runs each one
through both engine paths and checks every metric against its bounds.
"""

from repro.robustness.catalog import (
    Scenario,
    ScenarioWorld,
    scenario_names,
    standard_catalog,
)
from repro.robustness.envelope import (
    Bounds,
    CatalogVerdict,
    EvaluationSettings,
    Envelope,
    MetricCheck,
    PathScore,
    SERVICE_PATH,
    ScenarioVerdict,
    composition_fault_plan,
    evaluate_catalog,
    evaluate_scenario,
)

__all__ = [
    "Bounds",
    "CatalogVerdict",
    "Envelope",
    "EvaluationSettings",
    "MetricCheck",
    "PathScore",
    "SERVICE_PATH",
    "Scenario",
    "ScenarioVerdict",
    "ScenarioWorld",
    "composition_fault_plan",
    "evaluate_catalog",
    "evaluate_scenario",
    "scenario_names",
    "standard_catalog",
]
