"""Expected-degradation envelopes and the scenario regression gate.

A robustness scenario is allowed to hurt the classifier — that is the
point of an adversary — but only *predictably*.  Each scenario ships an
:class:`Envelope`: per-metric bounds on how far the scenario run may
move FPR, FNR and telescope coverage from a clean baseline run of the
same world scale, plus (where the scenario targets specific blocks) an
absolute bound on the share of targeted blocks left in the served set.

The evaluator runs every scenario through the execution engine twice —
the batch **parallel** path (``workers >= 2``) and the **online**
rolling-window path — scores both against the scenario's ground truth,
and checks every metric against the envelope.  Bounds are two-sided on
purpose: a *lower* bound on the padded-evasive scenario's expected
degradation is what turns the catalog into a regression gate — if a
code change weakens the packet-size filter, the adversary suddenly
"fails" to degrade the classifier and the gate trips.

Fault-injection composition (:mod:`repro.faults`) can be folded on top;
the same :class:`~repro.faults.plan.FaultPlan` is applied to baseline
and scenario feeds alike, so the envelope deltas stay differential and
remain valid under degraded transport.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.engine import RunContext
from repro.core.evaluation import confusion_against_truth, telescope_coverage
from repro.core.metatelescope import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.faults.plan import FaultPlan, standard_injector
from repro.world.builder import World, build_world
from repro.world.observe import Observatory

if TYPE_CHECKING:
    from repro.robustness.catalog import Scenario, ScenarioWorld

#: The two engine paths every scenario is scored on.
PATHS = ("parallel", "online")

#: The opt-in third path: the online state published as an immutable
#: snapshot and read back through the query service
#: (:mod:`repro.service`), so the gate also covers the product surface.
SERVICE_PATH = "service"


@dataclass(frozen=True, slots=True)
class Bounds:
    """Closed interval a metric must stay inside (None = unbounded)."""

    lo: float | None = None
    hi: float | None = None

    def contains(self, value: float) -> bool:
        """Whether ``value`` respects both bounds."""
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def describe(self) -> str:
        """Human form, e.g. ``[0.05, 0.40]``."""
        lo = "-inf" if self.lo is None else f"{self.lo:+.3f}"
        hi = "+inf" if self.hi is None else f"{self.hi:+.3f}"
        return f"[{lo}, {hi}]"


@dataclass(frozen=True, slots=True)
class Envelope:
    """Per-metric expected-degradation bounds for one scenario.

    Delta metrics (``fpr_delta``, ``fnr_delta``, ``coverage_delta``)
    compare the scenario run against the clean baseline run of the same
    engine path; ``target_miss_rate`` is absolute — the share of the
    scenario's targeted blocks *not* in the final served set.
    """

    fpr_delta: Bounds = field(default_factory=Bounds)
    fnr_delta: Bounds = field(default_factory=Bounds)
    coverage_delta: Bounds = field(default_factory=Bounds)
    target_miss_rate: Bounds | None = None

    def metrics(self) -> dict[str, Bounds]:
        """The named bounds this envelope enforces."""
        named = {
            "fpr_delta": self.fpr_delta,
            "fnr_delta": self.fnr_delta,
            "coverage_delta": self.coverage_delta,
        }
        if self.target_miss_rate is not None:
            named["target_miss_rate"] = self.target_miss_rate
        return named


@dataclass(frozen=True, slots=True)
class PathScore:
    """Classifier quality of one engine path's run against ground truth."""

    path: str
    serving: int
    fpr: float
    fnr: float
    coverage: float
    target_miss_rate: float | None = None

    def to_json(self) -> dict:
        """JSON-ready form."""
        return {
            "path": self.path,
            "serving": self.serving,
            "fpr": round(self.fpr, 6),
            "fnr": round(self.fnr, 6),
            "coverage": round(self.coverage, 6),
            "target_miss_rate": (
                None
                if self.target_miss_rate is None
                else round(self.target_miss_rate, 6)
            ),
        }


@dataclass(frozen=True, slots=True)
class MetricCheck:
    """One metric of one path checked against its envelope bounds."""

    path: str
    metric: str
    value: float
    bounds: Bounds
    ok: bool

    def describe(self) -> str:
        """One line for the verdict table."""
        state = "ok" if self.ok else "VIOLATION"
        return (
            f"{self.path}/{self.metric} = {self.value:+.3f} "
            f"in {self.bounds.describe()} -> {state}"
        )


@dataclass(frozen=True)
class ScenarioVerdict:
    """The envelope verdict for one scenario across both engine paths."""

    scenario: str
    summary: str
    baseline: tuple[PathScore, ...]
    observed: tuple[PathScore, ...]
    checks: tuple[MetricCheck, ...]
    online_health: str
    detail: Mapping[str, object] = field(default_factory=dict)

    def ok(self) -> bool:
        """True when every metric stayed inside the envelope."""
        return all(check.ok for check in self.checks)

    def violations(self) -> tuple[MetricCheck, ...]:
        """The checks that left the envelope."""
        return tuple(check for check in self.checks if not check.ok)

    def to_json(self) -> dict:
        """JSON-ready form (consumed by CI and the trace sink)."""
        return {
            "scenario": self.scenario,
            "ok": self.ok(),
            "baseline": [score.to_json() for score in self.baseline],
            "observed": [score.to_json() for score in self.observed],
            "checks": [
                {
                    "path": check.path,
                    "metric": check.metric,
                    "value": round(check.value, 6),
                    "lo": check.bounds.lo,
                    "hi": check.bounds.hi,
                    "ok": check.ok,
                }
                for check in self.checks
            ],
            "online_health": self.online_health,
            "detail": dict(self.detail),
        }


@dataclass(frozen=True)
class CatalogVerdict:
    """The whole catalog's regression-gate outcome."""

    verdicts: tuple[ScenarioVerdict, ...]

    def ok(self) -> bool:
        """True when no scenario left its envelope."""
        return all(verdict.ok() for verdict in self.verdicts)

    def to_json(self) -> dict:
        """JSON-ready form."""
        return {
            "ok": self.ok(),
            "scenarios": [verdict.to_json() for verdict in self.verdicts],
        }


@dataclass(frozen=True, slots=True)
class EvaluationSettings:
    """How the evaluator drives the engine for every run."""

    days: int = 3
    #: Process-pool fan-out; the gate requires the parallel path, so
    #: anything below 2 is raised to 2.
    workers: int = 2
    chunk_size: int | str | None = None
    #: Fold kernel backend (None: engine default; both backends
    #: classify bit-identically, so the gate scores are unaffected).
    kernel: str | None = None
    #: Online degraded-day policy (the operational default).
    policy: str = "carry"
    #: Fold a canonical transport-fault plan on top of every feed
    #: (baseline and scenario alike, so deltas stay differential).
    compose_faults: bool = False
    fault_seed: int = 0
    #: Also score the **service** path: publish the online engine's
    #: snapshot through a :class:`~repro.service.MetaTelescopeService`
    #: and answer from the query surface.  The service must agree with
    #: the engine bit-for-bit — any divergence is an evaluation error,
    #: not a scored degradation.
    service_path: bool = False

    def effective_workers(self) -> int:
        """The fan-out actually used (parallel path mandatory)."""
        return max(2, self.workers)


def composition_fault_plan(settings: EvaluationSettings) -> FaultPlan:
    """The canonical transport-fault stack composed onto scenario feeds.

    Mid-campaign duplicated exports everywhere plus a truncated day at
    one small vantage: enough to exercise degraded-day policies and the
    order-deterministic injector composition, mild enough that the
    differential envelopes keep their meaning.
    """
    mid = settings.days // 2
    plan = FaultPlan(seed=settings.fault_seed)
    # Added in non-alphabetical order on purpose: composition is
    # order-deterministic (sorted by injector name), so this plan is
    # bit-identical to the same stack declared the other way round.
    plan.add(standard_injector("truncate", days=frozenset({mid}),
                               vantages=frozenset({"SE6"})))
    plan.add(standard_injector("duplicate", days=frozenset({mid})))
    return plan


def _make_telescope(world: World) -> MetaTelescope:
    """A fresh operator instance configured like the CLI's."""
    return MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


def _daily_views(world: World, settings: EvaluationSettings):
    """Per-day all-IXP views, optionally run through the fault plan."""
    observatory = Observatory(world)
    plan = (
        composition_fault_plan(settings) if settings.compose_faults else None
    )
    per_day = []
    for day in range(settings.days):
        views = list(observatory.day(day).ixp_views.values())
        if plan is not None:
            views = list(plan.apply(day, views).views)
        per_day.append(views)
    return per_day


def _score(
    prefixes: np.ndarray,
    world: World,
    path: str,
    active_overrides: np.ndarray | None,
    target_blocks: np.ndarray | None,
) -> PathScore:
    """Score one path's served prefixes against scenario ground truth."""
    confusion = confusion_against_truth(
        prefixes, world.index, day_active_overrides=active_overrides
    )
    # Blocks the scenario re-activated leave the dark denominator: the
    # classifier is *right* to stop serving them.
    total_dark = confusion.total_true_dark
    if active_overrides is not None and len(active_overrides):
        total_dark -= len(
            np.intersect1d(
                np.asarray(active_overrides, dtype=np.int64),
                world.index.truly_dark_blocks(),
            )
        )
    fnr = (
        1.0 - confusion.true_positives / total_dark if total_dark > 0 else 0.0
    )
    coverages = [
        telescope_coverage(prefixes, sensor).coverage()
        for sensor in world.telescopes.values()
    ]
    miss = None
    if target_blocks is not None and len(target_blocks):
        hit = np.intersect1d(np.asarray(target_blocks, dtype=np.int64), prefixes)
        miss = 1.0 - len(hit) / len(target_blocks)
    return PathScore(
        path=path,
        serving=len(np.unique(np.asarray(prefixes, dtype=np.int64))),
        fpr=confusion.false_positive_rate_of_inferred(),
        fnr=fnr,
        coverage=float(np.mean(coverages)) if coverages else 0.0,
        target_miss_rate=miss,
    )


def _run_paths(
    world: World,
    settings: EvaluationSettings,
    context: RunContext | None,
    scenario: str | None,
    active_overrides: np.ndarray | None,
    target_blocks: np.ndarray | None,
) -> tuple[tuple[PathScore, ...], str]:
    """Run both engine paths over a world; score each against truth."""
    per_day = _daily_views(world, settings)
    workers = settings.effective_workers()
    sinks = context.sinks if context is not None else ()
    fault_plan = (
        composition_fault_plan(settings) if settings.compose_faults else None
    )

    # Parallel (batch) path: every view of the campaign in one fold.
    batch_telescope = _make_telescope(world)
    if fault_plan is not None:
        batch_telescope.replace_collector(
            fault_plan.wrap_collector(batch_telescope.collector)
        )
    flat = [view for views in per_day for view in views]
    batch_result = batch_telescope.infer(
        flat,
        use_spoofing_tolerance=True,
        chunk_size=settings.chunk_size,
        workers=workers,
        kernel=settings.kernel,
    )
    scores = [
        _score(
            batch_result.prefixes, world, "parallel",
            active_overrides, target_blocks,
        )
    ]

    # Online (rolling-window) path: one day at a time, carry policy.
    online_telescope = _make_telescope(world)
    if fault_plan is not None:
        online_telescope.replace_collector(
            fault_plan.wrap_collector(online_telescope.collector)
        )
    online = OnlineMetaTelescope(
        telescope=online_telescope,
        window_days=settings.days,
        min_stable_days=min(2, settings.days),
        use_spoofing_tolerance=True,
        policy=settings.policy,
        chunk_size=settings.chunk_size,
        workers=workers,
        kernel=settings.kernel,
        sinks=sinks,
        scenario=scenario,
    )
    for day, views in enumerate(per_day):
        online.update(day, views)
    health = online.health_report()
    scores.append(
        _score(
            online.current_prefixes(), world, "online",
            active_overrides, target_blocks,
        )
    )

    if settings.service_path:
        served = _service_served_blocks(online, context)
        scores.append(
            _score(
                served, world, SERVICE_PATH, active_overrides, target_blocks
            )
        )
    return tuple(scores), health.summary()


def _service_served_blocks(
    online: OnlineMetaTelescope, context: RunContext | None
) -> np.ndarray:
    """Publish the online state and read the served set back through the
    query service, verifying point-query parity along the way.

    The service path must be a *transport*, never a classifier: every
    sampled point query and the full dark set have to match the engine
    bit-for-bit, or the evaluation itself is broken and raises.
    """
    from repro.service import MetaTelescopeService

    service = MetaTelescopeService(
        health_provider=online.health_report, context=context
    )
    service.publish(online.snapshot())
    snapshot = service.handle.current()
    served = snapshot.dark_blocks
    engine_served = online.current_prefixes()
    if not np.array_equal(served, np.asarray(engine_served, dtype=np.int64)):
        raise ValueError(
            "service path diverged from the online engine: "
            f"{len(served)} served via snapshot vs {len(engine_served)}"
        )
    step = max(1, len(served) // 16)
    for block in served[::step]:
        answer = service.point(str(int(block)))
        if not answer["dark"]:
            raise ValueError(
                f"service point query disagrees with the engine for "
                f"block {int(block)}: {answer}"
            )
    return served


def evaluate_scenario(
    scenario: "Scenario",
    baseline: tuple[PathScore, ...],
    settings: EvaluationSettings,
    context: RunContext | None = None,
) -> ScenarioVerdict:
    """Run one scenario through both paths and gate it on its envelope."""
    started = time.perf_counter()
    built: "ScenarioWorld" = scenario.build(settings)
    observed, health = _run_paths(
        built.world,
        settings,
        context,
        scenario.name,
        built.active_overrides,
        built.target_blocks,
    )
    baseline_by_path = {score.path: score for score in baseline}
    checks: list[MetricCheck] = []
    for score in observed:
        base = baseline_by_path[score.path]
        deltas = {
            "fpr_delta": score.fpr - base.fpr,
            "fnr_delta": score.fnr - base.fnr,
            "coverage_delta": score.coverage - base.coverage,
        }
        if score.target_miss_rate is not None:
            deltas["target_miss_rate"] = score.target_miss_rate
        for metric, bounds in scenario.envelope.metrics().items():
            if metric not in deltas:
                continue
            value = deltas[metric]
            checks.append(
                MetricCheck(
                    path=score.path,
                    metric=metric,
                    value=value,
                    bounds=bounds,
                    ok=bounds.contains(value),
                )
            )
    verdict = ScenarioVerdict(
        scenario=scenario.name,
        summary=scenario.summary,
        baseline=baseline,
        observed=observed,
        checks=checks and tuple(checks) or (),
        online_health=health,
        detail=built.detail,
    )
    if context is not None:
        context.emit(
            "scenario",
            scenario.name,
            time.perf_counter() - started,
            rows_in=sum(
                1 for check in verdict.checks
            ),
            rows_out=len(verdict.violations()),
            meta={
                "ok": verdict.ok(),
                "violations": [
                    check.describe() for check in verdict.violations()
                ],
                "observed": [score.to_json() for score in verdict.observed],
            },
        )
    return verdict


def evaluate_catalog(
    scenarios: "list[Scenario]",
    config,
    settings: EvaluationSettings | None = None,
    context: RunContext | None = None,
) -> CatalogVerdict:
    """Gate every scenario of a catalog against one shared baseline.

    ``config`` is the :class:`~repro.world.config.WorldConfig` of the
    scale under test; the clean baseline world is built fresh from it
    (never from the shared cached worlds — scenarios mutate theirs).
    """
    if settings is None:
        settings = EvaluationSettings()
    started = time.perf_counter()
    baseline_world = build_world(config)
    baseline, _ = _run_paths(
        baseline_world, settings, context, None, None, None
    )
    if context is not None:
        context.emit(
            "scenario",
            "baseline",
            time.perf_counter() - started,
            meta={"observed": [score.to_json() for score in baseline]},
        )
    verdicts = [
        evaluate_scenario(scenario, baseline, settings, context=context)
        for scenario in scenarios
    ]
    return CatalogVerdict(verdicts=tuple(verdicts))
