"""The adversarial scenario catalog.

Each :class:`Scenario` bundles a world-building recipe, the scenario's
ground truth (targeted blocks and/or day-active overrides), and its
:class:`~repro.robustness.envelope.Envelope` of expected degradation.
The catalog covers the adversaries and events the paper's operational
sections worry about:

``padded-evasive``
    A scanner that pads its TCP probes above the 44-byte IBR
    fingerprint (step 2's filter).  Expected: every targeted dark /24
    leaves the inferred set — the *lower* bound on that miss rate is
    what catches a regression weakening the packet-size filter.
``targeted-spoof-flip``
    A spoofing flood impersonating specific dark /24s to flip them
    dark→gray through the source-seen test (the surgical Figure-9
    attack).  Expected: the targeted blocks leave the set, nothing
    else moves.
``epidemic-outbreak``
    A Mirai-style outbreak with logistic infection growth.  Benign but
    violent illumination: coverage and FNR may *improve*; FPR must not.
``route-leak``
    A mid-campaign leak of a dark-heavy /16 toward a backbone AS: the
    blocks move between vantages (routing and traffic alike) while the
    space itself is unchanged.  Expected: near-zero envelope.
``flash-reactivation``
    A provider lights up a dark /16 mid-campaign with production
    traffic.  The blocks become day-active overrides: the classifier
    must stop serving them (high miss rate by design).

Every random choice is drawn from ``config.child_rng("scenario-…")``
streams, so a catalog's ground truth is a pure function of the world
seed — pinned by the seed-stability tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.bgp.events import EventedCollector, RouteEvent
from repro.net.ipv4 import Prefix
from repro.robustness.envelope import Bounds, Envelope, EvaluationSettings
from repro.traffic.epidemic import EpidemicOutbreakActor
from repro.traffic.evasion import PaddedEvasiveScanner
from repro.traffic.scanners import make_sources
from repro.traffic.spoofing import TargetedSpoofFlood
from repro.world.builder import World, build_world
from repro.world.config import WorldConfig
from repro.world.ground_truth import BlockState
from repro.world.scenarios import FlashReactivation, SteeredTrafficMix


@dataclass(frozen=True)
class ScenarioWorld:
    """A built scenario: the (fresh, mutated) world plus ground truth."""

    world: World
    #: Blocks the adversary aims at; scored as the absolute
    #: ``target_miss_rate`` (None: the scenario has no target list).
    target_blocks: np.ndarray | None = None
    #: Blocks that truly became active mid-campaign (flash events);
    #: serving them is a false positive, dropping them is correct.
    active_overrides: np.ndarray | None = None
    detail: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Scenario:
    """One catalog entry: recipe, ground truth and envelope."""

    name: str
    summary: str
    config: WorldConfig
    envelope: Envelope
    builder: Callable[[WorldConfig, EvaluationSettings], ScenarioWorld]

    def build(self, settings: EvaluationSettings) -> ScenarioWorld:
        """Build a fresh world with this scenario applied."""
        return self.builder(self.config, settings)


# -- shared ingredients ------------------------------------------------


def _dark_pool(world: World) -> np.ndarray:
    """Plain-dark /24s — adversary targets never include telescope
    space, so telescope coverage stays a clean scenario metric."""
    return world.index.blocks_in_state(BlockState.DARK)


def _active_pool(world: World) -> tuple[np.ndarray, np.ndarray]:
    active = world.index.truly_active_blocks()
    return active, world.index.asn_of(active)


def _attacker_asns(world: World) -> np.ndarray:
    attackers = np.array(
        [a.asn for a in world.registry if not a.spoof_filtered],
        dtype=np.int32,
    )
    if len(attackers) == 0:
        attackers = np.array(
            [next(iter(world.registry)).asn], dtype=np.int32
        )
    return attackers


def _source_arrays(sources) -> tuple[np.ndarray, np.ndarray]:
    ips = np.array([s.ip for s in sources], dtype=np.uint32)
    asns = np.array([s.asn for s in sources], dtype=np.int32)
    return ips, asns


def _sample_blocks(
    pool: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    count = min(count, len(pool))
    if count <= 0:
        raise ValueError("scenario needs a non-empty block pool")
    return np.sort(rng.choice(pool, size=count, replace=False))


def _top_slash16(blocks: np.ndarray) -> int:
    """The /16 index holding the most of ``blocks``."""
    anchors, counts = np.unique(blocks >> 8, return_counts=True)
    return int(anchors[np.argmax(counts)])


# -- scenario builders -------------------------------------------------


def build_padded_evasive(
    config: WorldConfig, settings: EvaluationSettings
) -> ScenarioWorld:
    """A padded scanner sweeping a sample of the dark space."""
    world = build_world(config)
    rng = config.child_rng("scenario-padded-evasive")
    dark = _dark_pool(world)
    targets = _sample_blocks(dark, max(8, min(96, len(dark) // 4)), rng)
    active, active_asns = _active_pool(world)
    sources = make_sources(active, active_asns, 24, rng)
    world.mix.add(
        PaddedEvasiveScanner(
            sources=sources,
            target_blocks=targets,
            pkts_per_block_day=140.0,
        )
    )
    return ScenarioWorld(
        world=world,
        target_blocks=targets,
        detail={"targets": len(targets), "sources": len(sources)},
    )


def build_targeted_spoof_flip(
    config: WorldConfig, settings: EvaluationSettings
) -> ScenarioWorld:
    """A spoofing flood impersonating a sample of dark /24s."""
    world = build_world(config)
    rng = config.child_rng("scenario-targeted-spoof")
    dark = _dark_pool(world)
    targets = _sample_blocks(dark, max(8, min(64, len(dark) // 6)), rng)
    active, active_asns = _active_pool(world)
    victim_ips, victim_asns = _source_arrays(
        make_sources(active, active_asns, 40, rng)
    )
    world.mix.add(
        TargetedSpoofFlood(
            target_blocks=targets,
            attacker_asns=_attacker_asns(world),
            victim_ips=victim_ips,
            victim_asns=victim_asns,
            pkts_per_block_day=400,
        )
    )
    return ScenarioWorld(
        world=world,
        target_blocks=targets,
        detail={"targets": len(targets)},
    )


def build_epidemic_outbreak(
    config: WorldConfig, settings: EvaluationSettings
) -> ScenarioWorld:
    """A Mirai-style outbreak spraying the whole allocated universe."""
    world = build_world(config)
    rng = config.child_rng("scenario-epidemic")
    active, active_asns = _active_pool(world)
    pool_size = max(40, min(400, len(active) // 3))
    bots = make_sources(active, active_asns, pool_size, rng)
    world.mix.add(
        EpidemicOutbreakActor(
            bot_pool=bots,
            target_blocks=world.index.blocks,
            pkts_per_bot_day=120.0,
            midpoint_day=max(1.0, settings.days / 2.0 - 0.5),
        )
    )
    return ScenarioWorld(world=world, detail={"bot_pool": pool_size})


def build_route_leak(
    config: WorldConfig, settings: EvaluationSettings
) -> ScenarioWorld:
    """A mid-campaign leak of the darkest /16 toward a backbone AS."""
    world = build_world(config)
    anchor = _top_slash16(_dark_pool(world))
    prefix = Prefix.from_ip(anchor << 16, 16)
    leaker = next(
        a.asn for a in world.registry if a.name.startswith("Backbone")
    )
    event = RouteEvent(
        prefix=prefix,
        by_asn=leaker,
        days=frozenset({settings.days // 2}),
        kind="leak",
    )
    world.collector = EventedCollector(world.collector, [event])
    world.mix = SteeredTrafficMix(base=world.mix, event=event)
    return ScenarioWorld(
        world=world,
        detail={
            "prefix": str(prefix),
            "leaker_asn": leaker,
            "event_days": sorted(event.days),
        },
    )


def build_flash_reactivation(
    config: WorldConfig, settings: EvaluationSettings
) -> ScenarioWorld:
    """A provider lights up the darkest /16 mid-campaign."""
    world = build_world(config)
    rng = config.child_rng("scenario-flash")
    dark = _dark_pool(world)
    anchor = _top_slash16(dark)
    blocks = dark[(dark >> 8) == anchor][:256]
    active, active_asns = _active_pool(world)
    remote_ips, remote_asns = _source_arrays(
        make_sources(active, active_asns, 60, rng)
    )
    start_day = max(1, settings.days // 2)
    world.mix.add(
        FlashReactivation(
            blocks=blocks,
            asns=world.index.asn_of(blocks),
            remote_ips=remote_ips,
            remote_asns=remote_asns,
            inbound_pkts_per_day=5000.0,
            start_day=start_day,
        )
    )
    return ScenarioWorld(
        world=world,
        target_blocks=blocks,
        active_overrides=blocks,
        detail={"blocks": len(blocks), "start_day": start_day},
    )


# -- the standard catalog ----------------------------------------------


def standard_catalog(config: WorldConfig) -> list[Scenario]:
    """The five standard scenarios, bound to one world config.

    Envelope bounds are calibrated at micro scale (seed 7) with margin
    for seed drift; re-run ``python -m repro scenarios run`` after any
    pipeline change and re-centre when a change *intentionally* moves a
    metric.
    """
    return [
        Scenario(
            name="padded-evasive",
            summary="scanner pads TCP probes above the 44-byte fingerprint",
            config=config,
            envelope=Envelope(
                fpr_delta=Bounds(-0.02, 0.03),
                fnr_delta=Bounds(0.0, 0.45),
                coverage_delta=Bounds(-0.22, 0.18),
                # The regression tooth: a healthy size filter evicts
                # (nearly) every padded block from the inferred set.
                target_miss_rate=Bounds(0.90, 1.0),
            ),
            builder=build_padded_evasive,
        ),
        Scenario(
            name="targeted-spoof-flip",
            summary="spoof flood flips chosen dark /24s into the graynet",
            config=config,
            envelope=Envelope(
                fpr_delta=Bounds(-0.02, 0.03),
                fnr_delta=Bounds(0.0, 0.35),
                coverage_delta=Bounds(-0.18, 0.18),
                target_miss_rate=Bounds(0.85, 1.0),
            ),
            builder=build_targeted_spoof_flip,
        ),
        Scenario(
            name="epidemic-outbreak",
            summary="Mirai-style outbreak multiplies IBR with an S-curve",
            config=config,
            envelope=Envelope(
                fpr_delta=Bounds(-0.02, 0.03),
                fnr_delta=Bounds(-0.25, 0.10),
                coverage_delta=Bounds(-0.10, 0.25),
            ),
            builder=build_epidemic_outbreak,
        ),
        Scenario(
            name="route-leak",
            summary="mid-campaign leak moves a dark /16 between vantages",
            config=config,
            envelope=Envelope(
                fpr_delta=Bounds(-0.02, 0.03),
                fnr_delta=Bounds(-0.10, 0.12),
                coverage_delta=Bounds(-0.15, 0.15),
            ),
            builder=build_route_leak,
        ),
        Scenario(
            name="flash-reactivation",
            summary="provider lights up a dark /16 mid-campaign",
            config=config,
            envelope=Envelope(
                fpr_delta=Bounds(-0.02, 0.12),
                fnr_delta=Bounds(-0.10, 0.15),
                coverage_delta=Bounds(-0.15, 0.18),
                target_miss_rate=Bounds(0.70, 1.0),
            ),
            builder=build_flash_reactivation,
        ),
    ]


def scenario_names(config: WorldConfig) -> list[str]:
    """The catalog's scenario names, in run order."""
    return [scenario.name for scenario in standard_catalog(config)]
