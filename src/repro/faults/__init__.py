"""Fault injection and feed-quality scoring (operating through failure).

The paper's Section 9 service vision means running on infrastructure
the operator does not control; this package makes the resulting failure
modes first-class, reproducible experiment inputs:

* :mod:`repro.faults.injectors` — the fault classes (outages, truncated
  or duplicated exports, corrupted fields, misreported sampling rates,
  stale RIB mirrors);
* :mod:`repro.faults.plan` — seeded, composable :class:`FaultPlan`\\ s;
* :mod:`repro.faults.quality` — per-day feed-quality scoring the online
  operator uses to decide whether to trust a day.
"""

from repro.faults.injectors import (
    MIN_BYTES_PER_PACKET,
    CorruptedFields,
    DuplicatedRecords,
    FaultEvent,
    FaultInjector,
    MisreportedSampling,
    SiteOutage,
    StaleRib,
    StaleRibCollector,
    TruncatedDay,
)
from repro.faults.plan import (
    STANDARD_FAULTS,
    FaultedDay,
    FaultPlan,
    standard_injector,
)
from repro.faults.quality import FeedQuality, score_feed

__all__ = [
    "MIN_BYTES_PER_PACKET",
    "CorruptedFields",
    "DuplicatedRecords",
    "FaultEvent",
    "FaultInjector",
    "MisreportedSampling",
    "SiteOutage",
    "StaleRib",
    "StaleRibCollector",
    "TruncatedDay",
    "STANDARD_FAULTS",
    "FaultedDay",
    "FaultPlan",
    "standard_injector",
    "FeedQuality",
    "score_feed",
]
