"""Per-day feed-quality scoring.

Before folding a day into the rolling window, the online operator wants
one number summarising "can I trust this feed today?".  The score is
the *minimum* of independent component scores (a feed is as good as its
worst defect), each in ``[0, 1]``:

* **presence** — views delivered vs the number of feeds expected;
* **volume** — estimated packet total vs the trailing-median history
  (catches truncated days and misreported sampling rates alike);
* **duplicates** — share of exactly repeated rows beyond the small
  natural collision rate (re-emitted export batches);
* **validity** — share of physically impossible rows (zeroed
  destinations, sub-header byte counts, empty packet counts);
* **sampling** — plausibility of the advertised sampling factors,
  optionally against per-vantage typical values learned on clean days.

Scoring never raises: an empty day scores 0.0 with reason
``"no views"``, which is exactly what degraded-mode policies key on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.faults.injectors import MIN_BYTES_PER_PACKET
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView

#: Exact-duplicate share below this is considered natural collision noise.
NATURAL_DUPLICATE_SHARE = 0.02
#: Duplicate share at which the duplicates component reaches zero.
DUPLICATE_ZERO_SHARE = 0.5
#: Advertised sampling factors this far (x or /) from the vantage's
#: typical value are implausible.
SAMPLING_TOLERANCE = 4.0


@dataclass(frozen=True, slots=True)
class FeedQuality:
    """Structured quality verdict for one day of views."""

    day: int
    num_views: int
    expected_views: int | None
    total_flows: int
    estimated_packets: float
    volume_ratio: float | None
    duplicate_fraction: float
    invalid_fraction: float
    score: float
    reasons: tuple[str, ...]

    def degraded(self, min_quality: float) -> bool:
        """Whether the day falls below the operator's quality bar."""
        return self.score < min_quality


def _duplicate_fraction(flows: FlowTable) -> float:
    if len(flows) == 0:
        return 0.0
    key = np.column_stack(
        [
            flows.src_ip.astype(np.int64),
            flows.dst_ip.astype(np.int64),
            flows.proto.astype(np.int64),
            flows.dport.astype(np.int64),
            flows.packets,
            flows.bytes,
        ]
    )
    unique_rows = np.unique(key, axis=0)
    return 1.0 - len(unique_rows) / len(flows)


def _invalid_fraction(flows: FlowTable) -> float:
    if len(flows) == 0:
        return 0.0
    invalid = (
        (flows.dst_ip == 0)
        | (flows.packets <= 0)
        | (flows.bytes < MIN_BYTES_PER_PACKET * flows.packets)
    )
    return float(invalid.mean())


def score_feed(
    day: int,
    views: Sequence[VantageDayView],
    history_packets: Sequence[float] = (),
    expected_views: int | None = None,
    typical_factors: Mapping[str, float] | None = None,
) -> FeedQuality:
    """Score one day of views against the operator's expectations.

    ``history_packets`` holds the estimated packet totals of previous
    *clean* days; ``typical_factors`` the per-vantage sampling factors
    learned from them.  Both default to "no expectations".
    """
    reasons: list[str] = []
    total_flows = sum(len(view.flows) for view in views)
    estimated = sum(view.estimated_packets() for view in views)

    if not views:
        return FeedQuality(
            day=day,
            num_views=0,
            expected_views=expected_views,
            total_flows=0,
            estimated_packets=0.0,
            volume_ratio=0.0 if history_packets else None,
            duplicate_fraction=0.0,
            invalid_fraction=0.0,
            score=0.0,
            reasons=("no views",),
        )

    components: dict[str, float] = {}

    if expected_views is not None and expected_views > 0:
        components["presence"] = min(1.0, len(views) / expected_views)
        if len(views) < expected_views:
            reasons.append(
                f"only {len(views)}/{expected_views} expected feeds delivered"
            )

    ratio: float | None = None
    if history_packets:
        baseline = float(np.median(np.asarray(history_packets, dtype=np.float64)))
        if baseline > 0:
            ratio = estimated / baseline
            components["volume"] = min(1.0, min(ratio, 1.0 / ratio) if ratio else 0.0)
            if components["volume"] < 0.9:
                reasons.append(
                    f"estimated volume {ratio:.2f}x the trailing median"
                )

    weights = np.array([len(view.flows) for view in views], dtype=np.float64)
    total_weight = weights.sum()
    if total_weight > 0:
        duplicate = float(
            np.dot(weights, [_duplicate_fraction(v.flows) for v in views])
            / total_weight
        )
        invalid = float(
            np.dot(weights, [_invalid_fraction(v.flows) for v in views])
            / total_weight
        )
    else:
        duplicate = invalid = 0.0
        reasons.append("all delivered views are empty")
        components["presence"] = 0.0

    excess = max(0.0, duplicate - NATURAL_DUPLICATE_SHARE)
    components["duplicates"] = max(
        0.0, 1.0 - excess / (DUPLICATE_ZERO_SHARE - NATURAL_DUPLICATE_SHARE)
    )
    if excess > 0:
        reasons.append(f"{duplicate:.1%} exactly duplicated rows")

    components["validity"] = max(0.0, 1.0 - 4.0 * invalid)
    if invalid > 0:
        reasons.append(f"{invalid:.1%} physically impossible rows")

    sampling_ok = True
    for view in views:
        if view.sampling_factor < 1.0:
            sampling_ok = False
            reasons.append(
                f"{view.vantage}: sampling factor {view.sampling_factor:g} < 1"
            )
        elif typical_factors and view.vantage in typical_factors:
            typical = typical_factors[view.vantage]
            if typical > 0 and not (
                typical / SAMPLING_TOLERANCE
                <= view.sampling_factor
                <= typical * SAMPLING_TOLERANCE
            ):
                sampling_ok = False
                reasons.append(
                    f"{view.vantage}: sampling factor {view.sampling_factor:g} "
                    f"vs typical {typical:g}"
                )
    components["sampling"] = 1.0 if sampling_ok else 0.3

    score = min(components.values())
    return FeedQuality(
        day=day,
        num_views=len(views),
        expected_views=expected_views,
        total_flows=total_flows,
        estimated_packets=estimated,
        volume_ratio=ratio,
        duplicate_fraction=duplicate,
        invalid_fraction=invalid,
        score=float(score),
        reasons=tuple(reasons),
    )
