"""Deterministic fault injectors over vantage-day views.

Each injector models one failure class a long-running meta-telescope
operation meets in practice (Section 9's "information as a service"
runs on infrastructure the operator does not control):

* :class:`SiteOutage` — an IXP stops exporting entirely for a day;
* :class:`TruncatedDay` — the feed dies partway through a day, so only
  a prefix of the day's records arrives;
* :class:`DuplicatedRecords` — a collector re-emits part of a day
  (retransmitted IPFIX batches);
* :class:`CorruptedFields` — rows arrive with impossible field values
  (zeroed addresses, sub-header byte counts, empty packet counts);
* :class:`MisreportedSampling` — the vantage advertises a wrong
  sampling rate, silently rescaling every estimated count;
* :class:`StaleRib` — the Route Views mirror lags, serving day ``d``
  inference a routing table from day ``d - lag``.

Injectors are pure: they never mutate the incoming view, and every
random choice comes from the :class:`~repro.faults.plan.FaultPlan`'s
seeded generator, so a plan replays identically run after run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.rib import RoutingTable
from repro.traffic.flows import FlowTable
from repro.vantage.sampling import VantageDayView

#: Minimum plausible bytes per packet (a bare IP+TCP header); rows
#: below it are physically impossible and mark field corruption.
MIN_BYTES_PER_PACKET = 20


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault, for the plan's audit trail."""

    day: int
    vantage: str
    fault: str
    detail: str


@dataclass(frozen=True)
class FaultInjector:
    """Base class: where a fault strikes, and what it does to a view.

    ``days``/``vantages`` of ``None`` mean "every day"/"every vantage".
    Subclasses override :meth:`inject`; returning ``None`` drops the
    view entirely (an outage).
    """

    days: frozenset[int] | None = None
    vantages: frozenset[str] | None = None

    @property
    def name(self) -> str:
        """Stable identifier used in events and CLI selection."""
        return type(self).__name__

    def applies(self, day: int, vantage: str) -> bool:
        """Whether this injector targets the given vantage-day."""
        if self.days is not None and day not in self.days:
            return False
        if self.vantages is not None and vantage not in self.vantages:
            return False
        return True

    def inject(
        self, view: VantageDayView, rng: np.random.Generator
    ) -> tuple[VantageDayView | None, str]:
        """Apply the fault; return the degraded view (or None) + detail."""
        raise NotImplementedError


@dataclass(frozen=True)
class SiteOutage(FaultInjector):
    """The vantage exports nothing at all for the targeted days."""

    def inject(
        self, view: VantageDayView, rng: np.random.Generator
    ) -> tuple[VantageDayView | None, str]:
        return None, f"dropped {len(view.flows):,} flows"


@dataclass(frozen=True)
class TruncatedDay(FaultInjector):
    """Only the first ``keep_fraction`` of the day's records arrive.

    A prefix slice (not a random sample) is the right model: export
    pipelines fail at a point in time, and everything after it is lost.
    """

    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction out of range: {self.keep_fraction}")

    def inject(
        self, view: VantageDayView, rng: np.random.Generator
    ) -> tuple[VantageDayView | None, str]:
        keep = int(len(view.flows) * self.keep_fraction)
        mask = np.zeros(len(view.flows), dtype=bool)
        mask[:keep] = True
        return (
            view.with_flows(view.flows.filter(mask)),
            f"kept first {keep:,}/{len(view.flows):,} flows",
        )


@dataclass(frozen=True)
class DuplicatedRecords(FaultInjector):
    """A fraction of the day's rows is delivered twice."""

    duplicate_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_fraction <= 1.0:
            raise ValueError(
                f"duplicate_fraction out of range: {self.duplicate_fraction}"
            )

    def inject(
        self, view: VantageDayView, rng: np.random.Generator
    ) -> tuple[VantageDayView | None, str]:
        count = int(len(view.flows) * self.duplicate_fraction)
        if count == 0:
            return view, "no rows duplicated"
        picked = rng.choice(len(view.flows), size=count, replace=False)
        mask = np.zeros(len(view.flows), dtype=bool)
        mask[picked] = True
        doubled = FlowTable.concat([view.flows, view.flows.filter(mask)])
        return view.with_flows(doubled), f"re-emitted {count:,} rows"


@dataclass(frozen=True)
class CorruptedFields(FaultInjector):
    """Rows arrive with impossible values in one field each.

    A third of the corrupted rows get a zeroed destination address, a
    third a byte count below the physical per-packet minimum, and a
    third an empty packet count — the three corruption shapes a parser
    or sanity scorer can actually detect.
    """

    corrupt_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.corrupt_fraction <= 1.0:
            raise ValueError(
                f"corrupt_fraction out of range: {self.corrupt_fraction}"
            )

    def inject(
        self, view: VantageDayView, rng: np.random.Generator
    ) -> tuple[VantageDayView | None, str]:
        flows = view.flows
        count = int(len(flows) * self.corrupt_fraction)
        if count == 0:
            return view, "no rows corrupted"
        picked = rng.choice(len(flows), size=count, replace=False)
        dst_ip = flows.dst_ip.copy()
        bytes_ = flows.bytes.copy()
        packets = flows.packets.copy()
        thirds = np.array_split(picked, 3)
        dst_ip[thirds[0]] = 0
        bytes_[thirds[1]] = np.maximum(
            packets[thirds[1]] * (MIN_BYTES_PER_PACKET // 4), 1
        )
        packets[thirds[2]] = 0
        corrupted = FlowTable(
            src_ip=flows.src_ip,
            dst_ip=dst_ip,
            proto=flows.proto,
            dport=flows.dport,
            packets=packets,
            bytes=bytes_,
            sender_asn=flows.sender_asn,
            dst_asn=flows.dst_asn,
            spoofed=flows.spoofed,
        )
        return view.with_flows(corrupted), f"corrupted {count:,} rows"


@dataclass(frozen=True)
class MisreportedSampling(FaultInjector):
    """The vantage advertises a wrong sampling factor.

    ``factor_multiplier`` < 1 understates the factor (every estimated
    count shrinks); > 1 overstates it.  The flows themselves are
    untouched — exactly the silent failure mode of a misconfigured
    IPFIX exporter.
    """

    factor_multiplier: float = 0.1

    def __post_init__(self) -> None:
        if self.factor_multiplier <= 0.0:
            raise ValueError(
                f"factor_multiplier must be > 0: {self.factor_multiplier}"
            )

    def inject(
        self, view: VantageDayView, rng: np.random.Generator
    ) -> tuple[VantageDayView | None, str]:
        reported = view.sampling_factor * self.factor_multiplier
        return (
            view.with_flows(view.flows, sampling_factor=reported),
            f"sampling factor {view.sampling_factor:g} -> {reported:g}",
        )


@dataclass(frozen=True)
class StaleRib(FaultInjector):
    """The RIB mirror lags by ``lag_days``; wraps the collector side.

    Unlike the view injectors this one degrades the *routing* input:
    :meth:`repro.faults.plan.FaultPlan.wrap_collector` consults it when
    building the stale collector.  ``inject`` passes views through
    untouched so a StaleRib can still live in a mixed plan.
    """

    lag_days: int = 1

    def __post_init__(self) -> None:
        if self.lag_days < 0:
            raise ValueError(f"lag_days must be >= 0: {self.lag_days}")

    def inject(
        self, view: VantageDayView, rng: np.random.Generator
    ) -> tuple[VantageDayView | None, str]:
        return view, f"rib lagged by {self.lag_days} day(s)"


class StaleRibCollector:
    """A collector proxy serving yesterday's (or older) daily tables.

    Wraps any object with the :class:`~repro.bgp.rib.RouteViewsCollector`
    interface; for a day targeted by a :class:`StaleRib` injector the
    daily table is the one from ``lag_days`` earlier (clamped at day 0).
    """

    def __init__(self, collector, injectors: list[StaleRib]) -> None:
        self._collector = collector
        self._injectors = list(injectors)

    def _effective_day(self, day: int) -> int:
        effective = day
        for injector in self._injectors:
            if injector.days is None or day in injector.days:
                effective = min(effective, max(0, day - injector.lag_days))
        return effective

    def daily_table(self, day: int) -> RoutingTable:
        """The (possibly stale) union table for ``day``."""
        return self._collector.daily_table(self._effective_day(day))

    def daily_prefixes(self, day: int):
        """Prefix list of the (possibly stale) daily table."""
        return self._collector.daily_prefixes(self._effective_day(day))

    def dump(self, day: int, dump_index: int):
        """A single (possibly stale) RIB dump."""
        return self._collector.dump(self._effective_day(day), dump_index)
