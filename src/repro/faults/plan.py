"""Composable, seeded fault plans.

A :class:`FaultPlan` bundles injectors with a seed and applies them to
each day's views in a canonical order (sorted by injector name).
Determinism is the whole point: the RNG for every (injector, day,
vantage) triple is derived from the plan seed and the injector's
position in that canonical order, so the same plan — declared in any
construction order — produces byte-identical degraded feeds on every
run.  Faults become a reproducible experiment input, not noise.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.faults.injectors import (
    CorruptedFields,
    DuplicatedRecords,
    FaultEvent,
    FaultInjector,
    MisreportedSampling,
    SiteOutage,
    StaleRib,
    StaleRibCollector,
    TruncatedDay,
)
from repro.vantage.sampling import VantageDayView


@dataclass(frozen=True, slots=True)
class FaultedDay:
    """One day's views after the plan ran, plus what was injected."""

    day: int
    views: tuple[VantageDayView, ...]
    events: tuple[FaultEvent, ...]

    def outage(self) -> bool:
        """True when the whole day was lost."""
        return len(self.views) == 0


@dataclass
class FaultPlan:
    """An ordered, seeded set of injectors over a campaign."""

    seed: int = 0
    injectors: list[FaultInjector] = field(default_factory=list)

    def add(self, injector: FaultInjector) -> "FaultPlan":
        """Append an injector (returns self for chaining)."""
        self.injectors.append(injector)
        return self

    def _rng(self, index: int, day: int, vantage: str) -> np.random.Generator:
        # crc32 gives a stable, process-independent hash of the vantage
        # code (unlike hash(), which is salted per interpreter run).
        return np.random.default_rng(
            (self.seed, 0xFA017, index, day, zlib.crc32(vantage.encode()))
        )

    def ordered_injectors(self) -> list[FaultInjector]:
        """The injectors in application order: sorted by name.

        Composition is order-deterministic: the same *set* of injectors
        produces byte-identical degraded feeds regardless of the order
        they were added in, because both the application sequence and
        the per-injector RNG index come from this sorted order (the
        sort is stable, so same-name injectors keep insertion order).
        """
        return sorted(self.injectors, key=lambda injector: injector.name)

    def apply(self, day: int, views: list[VantageDayView]) -> FaultedDay:
        """Run every applicable injector over every view, in name order."""
        surviving: list[VantageDayView] = []
        events: list[FaultEvent] = []
        ordered = self.ordered_injectors()
        for view in views:
            current: VantageDayView | None = view
            for index, injector in enumerate(ordered):
                if current is None or not injector.applies(day, view.vantage):
                    continue
                current, detail = injector.inject(
                    current, self._rng(index, day, view.vantage)
                )
                events.append(
                    FaultEvent(
                        day=day,
                        vantage=view.vantage,
                        fault=injector.name,
                        detail=detail,
                    )
                )
            if current is not None:
                surviving.append(current)
        return FaultedDay(day=day, views=tuple(surviving), events=tuple(events))

    def wrap_collector(self, collector):
        """Collector proxy honouring the plan's :class:`StaleRib` faults.

        Returns the collector unchanged when the plan has none, so the
        call is safe to make unconditionally.
        """
        stale = [i for i in self.injectors if isinstance(i, StaleRib)]
        if not stale:
            return collector
        return StaleRibCollector(collector, stale)

    def has_fault(self, name: str) -> bool:
        """Whether any injector of class-name ``name`` is in the plan."""
        return any(injector.name == name for injector in self.injectors)


#: CLI / benchmark names for the standard one-fault plans.
STANDARD_FAULTS = (
    "outage",
    "truncate",
    "duplicate",
    "corrupt",
    "missample",
    "stale-rib",
)


def standard_injector(
    name: str,
    days: frozenset[int] | None = None,
    vantages: frozenset[str] | None = None,
) -> FaultInjector:
    """A canonical injector for one of :data:`STANDARD_FAULTS`."""
    factories = {
        "outage": lambda: SiteOutage(days=days, vantages=vantages),
        "truncate": lambda: TruncatedDay(
            days=days, vantages=vantages, keep_fraction=0.35
        ),
        "duplicate": lambda: DuplicatedRecords(
            days=days, vantages=vantages, duplicate_fraction=0.4
        ),
        "corrupt": lambda: CorruptedFields(
            days=days, vantages=vantages, corrupt_fraction=0.2
        ),
        "missample": lambda: MisreportedSampling(
            days=days, vantages=vantages, factor_multiplier=0.05
        ),
        "stale-rib": lambda: StaleRib(days=days, vantages=vantages, lag_days=2),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown fault {name!r}; choose from {', '.join(STANDARD_FAULTS)}"
        ) from None
