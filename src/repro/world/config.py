"""World configuration: every knob of the synthetic Internet.

The default values reproduce the paper's setting at a reduced scale
(the "paper scale"): telescope and ISP sizes are kept at their real
block counts (they are small in absolute terms), while the general
Internet and traffic intensities are scaled down by a documented
factor so a full measurement week simulates in minutes.

Scale presets:

* :func:`giant_config` — stress scale (≥50 M IXP rows/day; archive-backed
  benchmarking only);
* :func:`paper_config` — benchmark scale (~80 k announced /24s);
* :func:`small_config` — integration-test scale (~3 k announced /24s);
* :func:`micro_config` — unit-test scale (~700 announced /24s).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace

import numpy as np

#: Traffic intensity is ``1e-4`` of reality: a real dark /24 receives
#: roughly 2 M packets/day (Table 2); ours receives ~200 simulation
#: packets/day of combined IBR at intensity 1.0 (see traffic knobs).
INTENSITY_NOTE = "simulation packet counts are ~1e-4 of the paper's"


@dataclass(frozen=True, slots=True)
class IxpSpec:
    """Structural description of one IXP vantage point."""

    code: str
    region: str  # 'CE' | 'NA' | 'SE'
    #: Probability that an eligible same-region AS is a member.
    member_share: float
    #: Probability a flow between two fully engaged parties crosses here.
    capture_share: float
    #: IPFIX sampling: 1 / sampling probability.
    sampling_factor: float


#: The paper's 14 IXPs (Table 1), sized to reproduce Table 6's ordering.
DEFAULT_IXPS: tuple[IxpSpec, ...] = (
    IxpSpec("CE1", "CE", 0.62, 0.36, 12.0),
    IxpSpec("CE2", "CE", 0.16, 0.10, 8.0),
    IxpSpec("CE3", "CE", 0.30, 0.14, 8.0),
    IxpSpec("CE4", "CE", 0.05, 0.05, 6.0),
    IxpSpec("NA1", "NA", 0.58, 0.30, 12.0),
    IxpSpec("NA2", "NA", 0.14, 0.09, 8.0),
    IxpSpec("NA3", "NA", 0.02, 0.03, 4.0),
    IxpSpec("NA4", "NA", 0.04, 0.04, 4.0),
    IxpSpec("SE1", "SE", 0.22, 0.11, 8.0),
    IxpSpec("SE2", "SE", 0.26, 0.13, 8.0),
    IxpSpec("SE3", "SE", 0.07, 0.05, 6.0),
    IxpSpec("SE4", "SE", 0.24, 0.12, 8.0),
    IxpSpec("SE5", "SE", 0.06, 0.04, 4.0),
    IxpSpec("SE6", "SE", 0.03, 0.03, 4.0),
)

#: Continents IXP members are preferentially drawn from, per region code.
IXP_REGION_CONTINENTS: dict[str, tuple[str, ...]] = {
    "CE": ("EU",),
    "SE": ("EU",),
    "NA": ("NA",),
    # Hypothetical regions for vantage-placement studies (the paper
    # notes South America is under-covered for lack of a local IXP).
    "SA": ("SA",),
    "AS": ("AS",),
    "AF": ("AF",),
    "OC": ("OC",),
}


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Full parameterisation of a synthetic Internet."""

    seed: int = 7
    num_days: int = 7

    # -- address-space scale -------------------------------------------
    num_ases: int = 620
    #: /24 blocks in ordinary (non-legacy, non-ISP, non-telescope) allocations.
    general_blocks: int = 34_000
    #: Legacy allocations as (country, as_type name, prefix length); each
    #: is a large mostly-dark block (/12 = 4,096 /24s).
    legacy_allocations: tuple[tuple[str, str, int], ...] = (
        ("US", "Education", 12),
        ("US", "Education", 13),
        ("US", "Enterprise", 12),
        ("CN", "ISP", 12),
        ("JP", "ISP", 13),
        ("GB", "Enterprise", 14),
    )
    #: Fraction of a legacy allocation that is truly dark.
    legacy_dark_share: float = 0.82
    #: The ISP that hosts TUS1 (Table 3's labelled data).
    isp_blocks: int = 26_079
    isp_active_blocks: int = 5_835
    isp_low_active_blocks: int = 2_088
    #: Telescopes (Table 2).
    tus1_blocks: int = 1_856
    teu1_blocks: int = 768
    teu2_blocks: int = 8
    #: Fraction of TEU1 lent out to end users (active) on any given day.
    teu1_lent_fraction: float = 0.655
    #: Never-announced /12s used as the spoofing-tolerance baseline.
    unrouted_baseline_prefixes: tuple[str, str] = ("39.0.0.0/12", "53.0.0.0/12")
    #: Fraction of announcements invisible to the Route Views collector.
    rv_hidden_rate: float = 0.004

    # -- ground-truth usage --------------------------------------------
    base_dark_rate: float = 0.24
    #: Of the non-dark remainder: heavily used (server/eyeball) share and
    #: quiet-server share; the rest is lightly-used client space (MIXED),
    #: which dominates the observed Internet — the paper's huge graynet
    #: class is exactly this space.
    active_share_nondark: float = 0.17
    low_share_nondark: float = 0.07
    cdn_block_share: float = 0.015
    #: Per-AS-type multipliers on the dark rate (data centers are young
    #: and dense; legacy education space is sparse).
    type_dark_bias: dict[str, float] = field(
        default_factory=lambda: {
            "ISP": 1.0,
            "Enterprise": 1.05,
            "Education": 1.25,
            "Data Center": 0.45,
        }
    )

    # -- traffic intensity (simulation packets/day) ---------------------
    scan_pkts_per_block_day: float = 34.0
    udp_pkts_per_block_day: float = 6.0
    backscatter_share: float = 0.06
    production_inbound_mean: float = 650.0
    production_outbound_mean: float = 420.0
    #: Lightly-used (MIXED) space: modest visible outbound, no visible
    #: inbound data (its return path is asymmetric w.r.t. the IXPs).
    mixed_outbound_mean: float = 220.0
    cdn_inbound_mean: float = 2_600.0
    #: Ground spoofed packets "from" each /24 of the effective source
    #: space per day (uniform strategy), before visibility and sampling.
    spoof_ground_per_block_day: float = 18.0
    #: Concentrated subnet floods: events/day, intensity per /24 of the
    #: flooded /16, and row aggregation.
    spoof_floods_per_day: int = 38
    spoof_flood_pkts_per_block: int = 3000
    #: Whether floods also impersonate dark-heavy /16s (mixed anchor
    #: pool).  Off by default: spoofers impersonate lively ranges, and
    #: dark-heavy hits would destroy the telescope coverage the paper
    #: reports (Table 4).  The Figure-9 ablation can switch it on.
    spoof_flood_mixed_anchors: bool = False
    misconfig_dark_share: float = 0.004
    #: Active-block inbound ack-profile category probabilities:
    #: (ack-heavy, mid-44, pure-ack).  See production traffic notes.
    ack_profile_probs: tuple[float, float, float] = (0.07, 0.16, 0.009)
    weekend_factor_quiet: float = 0.12
    #: Day-0 backscatter burst toward the TEU2 neighbourhood (drives the
    #: Table 4 volume-filter behaviour).
    teu2_day0_burst_pkts: int = 60_000

    # -- vantage points --------------------------------------------------
    ixps: tuple[IxpSpec, ...] = DEFAULT_IXPS
    #: Fraction of out-of-region ASes joining an IXP (remote peering).
    remote_member_factor: float = 0.45
    #: IXPs where the TEU2 host peers directly.
    teu2_member_ixps: tuple[str, ...] = (
        "CE1", "CE2", "CE3", "SE1", "SE2", "SE3", "SE4", "NA1", "NA2", "SE5",
    )
    tus1_host_ixps: tuple[str, ...] = ("NA1", "NA2")
    teu1_host_ixps: tuple[str, ...] = ("CE1", "CE2")

    # -- auxiliary datasets ----------------------------------------------
    censys_recall: float = 0.90
    ndt_recall: float = 0.22
    isi_recall: float = 0.78
    liveness_stale_rate: float = 0.012
    geodb_error_rate: float = 0.02
    ipinfo_error_rate: float = 0.03

    # -- inference defaults (simulation units) ---------------------------
    avg_size_threshold: float = 44.0
    volume_threshold_pkts_day: float = 700.0
    active_min_week_packets: int = 1_000

    def child_rng(self, name: str) -> np.random.Generator:
        """A named, deterministic RNG stream derived from the seed."""
        return np.random.default_rng((self.seed, zlib.crc32(name.encode())))

    def scaled(self, **overrides: object) -> "WorldConfig":
        """A copy with fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def paper_config(seed: int = 7) -> WorldConfig:
    """Benchmark-scale world (the default field values)."""
    return WorldConfig(seed=seed)


def giant_config(seed: int = 7) -> WorldConfig:
    """Stress-scale world: ≥50 M IXP flow rows per observed day.

    Four times the paper scale's announced space and ~36x its traffic
    intensity (both scale row counts near-linearly), so a single day's
    "All IXPs" dataset lands around 60 M rows — past the 50 M rows/day
    floor the kernel benchmarks exercise.  Volume-shaped inference
    thresholds scale with the intensity so classification stays
    structurally comparable.

    A day takes minutes to simulate and ~2 GiB to archive: always
    observe this world through a
    :class:`~repro.world.capture_cache.CaptureCache` so generation is
    paid once and every later fold streams from flowpack archives.
    Not meant for tests — the benchmarks are its only intended caller.
    """
    intensity = 36.0
    return WorldConfig(
        seed=seed,
        num_ases=1_400,
        general_blocks=136_000,
        scan_pkts_per_block_day=34.0 * intensity,
        udp_pkts_per_block_day=6.0 * intensity,
        production_inbound_mean=650.0 * intensity,
        production_outbound_mean=420.0 * intensity,
        mixed_outbound_mean=220.0 * intensity,
        cdn_inbound_mean=2_600.0 * intensity,
        spoof_ground_per_block_day=18.0 * intensity,
        spoof_flood_pkts_per_block=int(3_000 * intensity),
        teu2_day0_burst_pkts=int(60_000 * intensity),
        volume_threshold_pkts_day=700.0 * intensity,
        active_min_week_packets=int(1_000 * intensity),
    )


def small_config(seed: int = 7) -> WorldConfig:
    """Integration-test scale: ~3 k announced /24 blocks."""
    return WorldConfig(
        seed=seed,
        num_ases=140,
        general_blocks=1_600,
        legacy_allocations=(
            ("US", "Education", 17),
            ("CN", "ISP", 18),
        ),
        isp_blocks=600,
        isp_active_blocks=140,
        isp_low_active_blocks=48,
        tus1_blocks=96,
        teu1_blocks=48,
        teu2_blocks=8,
        unrouted_baseline_prefixes=("39.0.0.0/16", "53.0.0.0/16"),
        teu2_day0_burst_pkts=40_000,
        spoof_floods_per_day=1,
        spoof_flood_pkts_per_block=1500,
        spoof_flood_mixed_anchors=False,
    )


def micro_config(seed: int = 7) -> WorldConfig:
    """Unit-test scale: ~700 announced /24 blocks, fast to simulate."""
    return WorldConfig(
        seed=seed,
        num_ases=60,
        general_blocks=420,
        legacy_allocations=(("US", "Education", 19),),
        isp_blocks=160,
        isp_active_blocks=40,
        isp_low_active_blocks=12,
        tus1_blocks=32,
        teu1_blocks=16,
        teu2_blocks=4,
        unrouted_baseline_prefixes=("39.0.0.0/17", "53.0.0.0/17"),
        teu2_day0_burst_pkts=30_000,
        spoof_floods_per_day=1,
        spoof_flood_pkts_per_block=1000,
        spoof_flood_mixed_anchors=False,
    )
