"""World builder: generates the whole synthetic Internet from a config.

Generation is deterministic: every stochastic choice draws from a named
child RNG of ``config.seed``, so two builds of the same config are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bgp.asinfo import ASRegistry, ASType, AutonomousSystem
from repro.bgp.rib import Announcement, RouteViewsCollector, RoutingTable
from repro.bgp.topology import AsTopology
from repro.datasets.as2org import AsToOrgMap
from repro.datasets.geodb import GeoDatabase
from repro.datasets.ipinfo import AsClassification
from repro.datasets.liveness import LivenessDataset
from repro.datasets.pfx2as import PrefixToAsMap
from repro.geo.countries import COUNTRIES, Continent, Country
from repro.net.ipv4 import Prefix
from repro.net.special import SPECIAL_PURPOSE_REGISTRY
from repro.traffic.backscatter import BackscatterActor, Victim
from repro.traffic.botnets import CampaignSpec, standard_campaign_specs
from repro.traffic.flows import FlowTable
from repro.traffic.mix import DailyTrafficMix, MisconfigurationNoise, UdpRadiationActor
from repro.traffic.packets import PacketSizeModel
from repro.traffic.production import CdnAckSink, ProductionTraffic
from repro.traffic.scanners import ScanCampaign, make_sources
from repro.traffic.spoofing import SpoofedFloodActor
from repro.vantage.isp import IspVantage
from repro.vantage.ixp import Ixp, IxpFabric
from repro.vantage.telescope import Telescope
from repro.world.config import IXP_REGION_CONTINENTS, WorldConfig
from repro.world.ground_truth import (
    BlockIndex,
    BlockState,
    country_index_of,
    type_index_of,
)

_AS_TYPE_BY_NAME = {t.value: t for t in ASType}

#: General AS business-type mix (continent-independent base).
_TYPE_MIX = (
    (ASType.ISP, 0.45),
    (ASType.ENTERPRISE, 0.27),
    (ASType.EDUCATION, 0.10),
    (ASType.DATA_CENTER, 0.18),
)


@dataclass(frozen=True, slots=True)
class _Allocation:
    """One announced prefix with its owner and ground-truth states."""

    prefix: Prefix
    asn: int
    country_code: str
    as_type: ASType
    states: np.ndarray  # per-/24 BlockState values


class _Allocator:
    """Hands out aligned prefixes from the usable IPv4 space."""

    def __init__(self, forbidden_blocks: list[tuple[int, int]]) -> None:
        # Usable /8s: skip 0/8 plus every /8 touching special space or
        # the forbidden (unrouted-baseline) ranges.
        special = {
            entry.prefix.network >> 24
            for entry in SPECIAL_PURPOSE_REGISTRY.entries
        }
        forbidden_octets = {lo >> 16 for lo, _ in forbidden_blocks}
        self._usable_octets = [
            octet
            for octet in range(1, 224)
            if octet not in special and octet not in forbidden_octets
        ]
        self._octet_cursor = 0
        self._cursor_block = self._usable_octets[0] << 16

    def allocate(self, length: int) -> Prefix:
        """Next free, naturally aligned prefix of the given length."""
        if length > 24:
            raise ValueError("allocations are /24 or shorter")
        size = 1 << (24 - length)
        while True:
            aligned = ((self._cursor_block + size - 1) // size) * size
            octet = aligned >> 16
            end_octet = (aligned + size - 1) >> 16
            current = self._usable_octets[self._octet_cursor]
            if octet == current and end_octet == current:
                self._cursor_block = aligned + size
                return Prefix(aligned << 8, length)
            # Move to the next usable /8 and retry.
            self._octet_cursor += 1
            if self._octet_cursor >= len(self._usable_octets):
                raise RuntimeError("address space exhausted; shrink the config")
            self._cursor_block = self._usable_octets[self._octet_cursor] << 16


def _decompose_blocks(num_blocks: int, max_parts: int = 8) -> list[int]:
    """Prefix lengths (<= /24) whose sizes sum to ~``num_blocks``.

    Greedy binary decomposition, largest first, truncated to
    ``max_parts`` components (the remainder is rounded into the last
    component, mimicking how registries hand out CIDR blocks).
    """
    if num_blocks < 1:
        raise ValueError("need at least one /24")
    lengths: list[int] = []
    remaining = num_blocks
    while remaining > 0 and len(lengths) < max_parts:
        size = 1 << (remaining.bit_length() - 1)
        if len(lengths) == max_parts - 1 and remaining > size:
            size = 1 << remaining.bit_length()  # round up, last chance
        size = min(size, 1 << 16)  # never larger than a /8
        lengths.append(24 - size.bit_length() + 1)
        remaining -= size
    return lengths


@dataclass
class WorldDatasets:
    """The auxiliary datasets bundled with a world."""

    liveness: list[LivenessDataset]
    geodb: GeoDatabase
    pfx2as: PrefixToAsMap
    as2org: AsToOrgMap
    ipinfo: AsClassification


@dataclass
class World:
    """A fully generated synthetic Internet."""

    config: WorldConfig
    registry: ASRegistry
    topology: AsTopology
    collector: RouteViewsCollector
    true_routing: RoutingTable
    fabric: IxpFabric
    telescopes: dict[str, Telescope]
    isp: IspVantage
    index: BlockIndex
    mix: DailyTrafficMix
    datasets: WorldDatasets
    unrouted_baseline_blocks: np.ndarray
    special_asns: dict[str, int] = field(default_factory=dict)

    def annotate_dst_asn(self, flows: FlowTable) -> FlowTable:
        """Fill ``dst_asn`` from the ground-truth block index."""
        missing = flows.dst_asn < 0
        if not missing.any():
            return flows
        dst_asn = flows.dst_asn.copy()
        dst_asn[missing] = self.index.asn_of(flows.dst_blocks()[missing])
        return FlowTable(
            src_ip=flows.src_ip,
            dst_ip=flows.dst_ip,
            proto=flows.proto,
            dport=flows.dport,
            packets=flows.packets,
            bytes=flows.bytes,
            sender_asn=flows.sender_asn,
            dst_asn=dst_asn,
            spoofed=flows.spoofed,
        )


def build_world(config: WorldConfig) -> World:
    """Generate a world from its configuration."""
    builder = _WorldBuilder(config)
    return builder.build()


class _WorldBuilder:
    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        self.allocations: list[_Allocation] = []
        self.ases: list[AutonomousSystem] = []
        self._next_asn = 1
        forbidden = []
        for text in config.unrouted_baseline_prefixes:
            prefix = Prefix.parse(text)
            forbidden.append(
                (prefix.first_block(), prefix.first_block() + prefix.num_blocks() - 1)
            )
        self.allocator = _Allocator(forbidden)
        self.unrouted_blocks = np.concatenate(
            [
                np.arange(lo, hi + 1, dtype=np.int64)
                for lo, hi in forbidden
            ]
        )

    # -- AS creation ----------------------------------------------------

    def _new_as(
        self,
        name: str,
        as_type: ASType,
        country: str,
        is_cdn: bool = False,
        spoof_filtered: bool = True,
    ) -> AutonomousSystem:
        autonomous_system = AutonomousSystem(
            asn=self._next_asn,
            name=name,
            org_id=f"ORG-{self._next_asn}",
            as_type=as_type,
            country_code=country,
            is_cdn=is_cdn,
            spoof_filtered=spoof_filtered,
        )
        self._next_asn += 1
        self.ases.append(autonomous_system)
        return autonomous_system

    def _allocate_for(
        self,
        autonomous_system: AutonomousSystem,
        num_blocks: int,
        states: np.ndarray | None = None,
        max_parts: int = 6,
    ) -> list[_Allocation]:
        """Allocate prefixes totalling ~``num_blocks`` to an AS."""
        made = []
        offset = 0
        for length in _decompose_blocks(num_blocks, max_parts=max_parts):
            prefix = self.allocator.allocate(length)
            autonomous_system.announced.append(prefix)
            size = prefix.num_blocks()
            if states is None:
                piece = np.full(size, int(BlockState.DARK), dtype=np.int32)
            else:
                piece = states[offset : offset + size]
                if len(piece) < size:  # rounding gave us extra space
                    piece = np.concatenate(
                        [piece, np.full(size - len(piece), piece[-1] if len(piece) else int(BlockState.DARK), dtype=np.int32)]
                    )
            made.append(
                _Allocation(
                    prefix=prefix,
                    asn=autonomous_system.asn,
                    country_code=autonomous_system.country_code,
                    as_type=autonomous_system.as_type,
                    states=piece.astype(np.int32),
                )
            )
            offset += size
        self.allocations.extend(made)
        return made

    # -- ground-truth state sampling --------------------------------------

    def _states_for(
        self,
        num_blocks: int,
        country: Country,
        as_type: ASType,
        rng: np.random.Generator,
        dark_rate_override: float | None = None,
    ) -> np.ndarray:
        """Per-/24 states with contiguous dark runs (Hilbert structure)."""
        config = self.config
        if dark_rate_override is not None:
            dark_rate = dark_rate_override
        else:
            dark_rate = (
                config.base_dark_rate
                * country.dark_bias
                * config.type_dark_bias[as_type.value]
            )
        dark_rate = float(np.clip(dark_rate, 0.02, 0.92))
        states = np.full(num_blocks, int(BlockState.ACTIVE), dtype=np.int32)
        num_dark = int(round(num_blocks * dark_rate))
        # One contiguous dark run at a random end-biased offset: real
        # allocations are used from one end, leaving the tail dark.
        if num_dark > 0:
            start = (
                0
                if rng.random() < 0.5
                else num_blocks - num_dark
            )
            states[start : start + num_dark] = int(BlockState.DARK)
        # Split the non-dark remainder: a small heavily-used share, a
        # quiet-server share, and a dominant lightly-used (MIXED) rest.
        noise = rng.random(num_blocks)
        non_dark = states == int(BlockState.ACTIVE)
        low_cut = config.active_share_nondark + config.low_share_nondark
        low = non_dark & (noise >= config.active_share_nondark) & (noise < low_cut)
        mixed = non_dark & (noise >= low_cut)
        states[low] = int(BlockState.LOW_ACTIVE)
        states[mixed] = int(BlockState.MIXED)
        # A little salt inside the dark run: isolated used blocks.
        dark_mask = states == int(BlockState.DARK)
        salt = dark_mask & (rng.random(num_blocks) < 0.03)
        states[salt] = int(BlockState.MIXED)
        return states

    # -- build phases -----------------------------------------------------

    def build(self) -> World:
        config = self.config
        rng_world = config.child_rng("world-structure")

        tier1 = self._build_backbone()
        cdns = self._build_cdns(rng_world)
        isp_as, tus1_blocks, isp_blocks = self._build_isp_and_tus1(rng_world)
        teu1_as, teu1_blocks = self._build_teu1(rng_world)
        teu2_as, teu2_blocks = self._build_teu2(rng_world)
        self._build_legacy(rng_world)
        general_ases = self._build_general(rng_world)

        index = self._build_index()
        registry = ASRegistry.from_ases(self.ases)
        topology = self._build_topology(tier1, cdns, general_ases, rng_world)
        collector, true_routing = self._build_routing(rng_world)
        fabric = self._build_fabric(
            topology,
            tier1,
            cdns,
            isp_as,
            teu1_as,
            teu2_as,
            rng_world,
        )
        telescopes = self._build_telescopes(
            tus1_blocks, teu1_blocks, teu2_blocks, config.child_rng("teu1-lending")
        )
        isp = IspVantage(code="ISP1", asn=isp_as.asn, blocks=isp_blocks)
        mix = self._build_traffic(
            index, registry, telescopes, config.child_rng("traffic-structure")
        )
        datasets = self._build_datasets(index, registry, collector)

        return World(
            config=config,
            registry=registry,
            topology=topology,
            collector=collector,
            true_routing=true_routing,
            fabric=fabric,
            telescopes=telescopes,
            isp=isp,
            index=index,
            mix=mix,
            datasets=datasets,
            unrouted_baseline_blocks=self.unrouted_blocks,
            special_asns={
                "isp": isp_as.asn,
                "teu1": teu1_as.asn,
                "teu2": teu2_as.asn,
            },
        )

    def _build_backbone(self) -> list[AutonomousSystem]:
        specs = [
            ("Backbone-US-1", "US"),
            ("Backbone-US-2", "US"),
            ("Backbone-DE", "DE"),
            ("Backbone-GB", "GB"),
            ("Backbone-FR", "FR"),
            ("Backbone-JP", "JP"),
            ("Backbone-SE", "SE"),
            ("Backbone-IT", "IT"),
        ]
        tier1 = []
        rng = self.config.child_rng("backbone")
        for name, country in specs:
            autonomous_system = self._new_as(name, ASType.ISP, country)
            tier1.append(autonomous_system)
            states = self._states_for(
                96, autonomous_system.country, ASType.ISP, rng
            )
            self._allocate_for(autonomous_system, 96, states)
        return tier1

    def _build_cdns(self, rng: np.random.Generator) -> list[AutonomousSystem]:
        cdns = []
        for name, country in (
            ("CDN-Alpha", "US"),
            ("CDN-Beta", "US"),
            ("CDN-Gamma", "NL"),
        ):
            autonomous_system = self._new_as(
                name, ASType.DATA_CENTER, country, is_cdn=True
            )
            cdns.append(autonomous_system)
            share = self.config.cdn_block_share
            total_cdn = max(
                8, int(self.config.general_blocks * share / 3)
            )
            states = np.full(total_cdn, int(BlockState.CDN_SINK), dtype=np.int32)
            states[rng.random(total_cdn) < 0.25] = int(BlockState.ACTIVE)
            self._allocate_for(autonomous_system, total_cdn, states)
        return cdns

    def _build_isp_and_tus1(
        self, rng: np.random.Generator
    ) -> tuple[AutonomousSystem, np.ndarray, np.ndarray]:
        """The US ISP hosting TUS1, with the paper's activity mix."""
        config = self.config
        isp_as = self._new_as("Hosting-ISP-US", ASType.ISP, "US")
        total = config.isp_blocks
        states = np.full(total, int(BlockState.DARK), dtype=np.int32)
        # Telescope: one contiguous run in the middle third (Figure 3).
        tus1_start = total // 3
        states[tus1_start : tus1_start + config.tus1_blocks] = int(
            BlockState.TELESCOPE
        )
        # Active blocks: contiguous runs at the front.
        remaining = np.flatnonzero(states == int(BlockState.DARK))
        active_positions = remaining[: config.isp_active_blocks]
        states[active_positions] = int(BlockState.ACTIVE)
        remaining = np.flatnonzero(states == int(BlockState.DARK))
        low_positions = remaining[: config.isp_low_active_blocks]
        states[low_positions] = int(BlockState.LOW_ACTIVE)
        made = self._allocate_for(isp_as, total, states, max_parts=8)
        blocks = np.concatenate([list(a.prefix.blocks()) for a in made]).astype(
            np.int64
        )
        state_concat = np.concatenate([a.states for a in made])
        tus1_blocks = blocks[state_concat == int(BlockState.TELESCOPE)]
        return isp_as, tus1_blocks, blocks

    def _build_teu1(
        self, rng: np.random.Generator
    ) -> tuple[AutonomousSystem, np.ndarray]:
        config = self.config
        teu1_as = self._new_as("Research-ISP-DE", ASType.ISP, "DE")
        telescope_states = np.full(
            config.teu1_blocks, int(BlockState.TELESCOPE), dtype=np.int32
        )
        made = self._allocate_for(teu1_as, config.teu1_blocks, telescope_states)
        teu1_blocks = np.concatenate(
            [list(a.prefix.blocks()) for a in made]
        ).astype(np.int64)
        # The host network also has ordinary active space.
        extra = max(32, config.teu1_blocks // 4)
        states = self._states_for(extra, teu1_as.country, ASType.ISP, rng)
        self._allocate_for(teu1_as, extra, states)
        return teu1_as, teu1_blocks

    def _build_teu2(
        self, rng: np.random.Generator
    ) -> tuple[AutonomousSystem, np.ndarray]:
        config = self.config
        teu2_as = self._new_as("Exchange-Lab-CH", ASType.ISP, "CH")
        states = np.full(config.teu2_blocks, int(BlockState.TELESCOPE), dtype=np.int32)
        made = self._allocate_for(teu2_as, config.teu2_blocks, states)
        teu2_blocks = np.concatenate(
            [list(a.prefix.blocks()) for a in made]
        ).astype(np.int64)
        extra = 16
        extra_states = self._states_for(extra, teu2_as.country, ASType.ISP, rng)
        self._allocate_for(teu2_as, extra, extra_states)
        return teu2_as, teu2_blocks

    def _build_legacy(self, rng: np.random.Generator) -> None:
        config = self.config
        for i, (country, type_name, length) in enumerate(config.legacy_allocations):
            as_type = _AS_TYPE_BY_NAME[type_name]
            autonomous_system = self._new_as(
                f"Legacy-{country}-{i}", as_type, country
            )
            size = 1 << (24 - length)
            states = self._states_for(
                size,
                autonomous_system.country,
                as_type,
                rng,
                dark_rate_override=config.legacy_dark_share,
            )
            self._allocate_for(autonomous_system, size, states, max_parts=1)

    def _build_general(self, rng: np.random.Generator) -> list[AutonomousSystem]:
        config = self.config
        count = max(0, config.num_ases - len(self.ases))
        if count == 0:
            return []
        weights = np.array([c.allocation_weight for c in COUNTRIES])
        weights = weights / weights.sum()
        countries = rng.choice(len(COUNTRIES), size=count, p=weights)
        type_labels = [t for t, _ in _TYPE_MIX]
        type_probs = np.array([p for _, p in _TYPE_MIX])
        types = rng.choice(len(type_labels), size=count, p=type_probs)
        # Lognormal AS sizes normalised to the general block budget.
        raw = rng.lognormal(mean=0.0, sigma=1.25, size=count)
        shares = raw / raw.sum()
        budgets = np.maximum((shares * config.general_blocks).astype(int), 1)
        made = []
        for i in range(count):
            country = COUNTRIES[countries[i]]
            as_type = type_labels[types[i]]
            spoof_filtered = bool(rng.random() > 0.15)
            autonomous_system = self._new_as(
                f"{as_type.value.replace(' ', '')}-{country.code}-{i}",
                as_type,
                country.code,
                spoof_filtered=spoof_filtered,
            )
            states = self._states_for(
                int(budgets[i]), country, as_type, rng
            )
            self._allocate_for(autonomous_system, int(budgets[i]), states)
            made.append(autonomous_system)
        return made

    def _build_index(self) -> BlockIndex:
        blocks_parts, asn_parts, country_parts, type_parts, state_parts = (
            [], [], [], [], []
        )
        for allocation in self.allocations:
            block_range = np.fromiter(
                allocation.prefix.blocks(), dtype=np.int64
            )
            size = len(block_range)
            blocks_parts.append(block_range)
            asn_parts.append(np.full(size, allocation.asn, dtype=np.int32))
            country_parts.append(
                np.full(size, country_index_of(allocation.country_code), dtype=np.int32)
            )
            type_parts.append(
                np.full(size, type_index_of(allocation.as_type), dtype=np.int32)
            )
            state_parts.append(allocation.states)
        blocks = np.concatenate(blocks_parts)
        order = np.argsort(blocks, kind="stable")
        return BlockIndex(
            blocks=blocks[order],
            asn=np.concatenate(asn_parts)[order],
            country_index=np.concatenate(country_parts)[order],
            type_index=np.concatenate(type_parts)[order],
            state=np.concatenate(state_parts)[order],
        )

    def _build_topology(
        self,
        tier1: list[AutonomousSystem],
        cdns: list[AutonomousSystem],
        general: list[AutonomousSystem],
        rng: np.random.Generator,
    ) -> AsTopology:
        topology = AsTopology()
        tier1_asns = [a.asn for a in tier1]
        for asn in tier1_asns:
            topology.add_as(asn)
        for i, left in enumerate(tier1_asns):
            for right in tier1_asns[i + 1 :]:
                topology.add_peering(left, right)
        # Mid tier: larger ISPs become customers of 1-2 tier-1s; the
        # special hosts and CDNs also hang off tier-1s.
        mids: list[int] = []
        others: list[AutonomousSystem] = []
        for autonomous_system in self.ases:
            if autonomous_system.asn in tier1_asns:
                continue
            is_mid = (
                autonomous_system.as_type is ASType.ISP
                and autonomous_system.num_announced_blocks() >= 48
            ) or autonomous_system.is_cdn
            if is_mid:
                mids.append(autonomous_system.asn)
                for provider in rng.choice(
                    tier1_asns, size=min(2, len(tier1_asns)), replace=False
                ):
                    topology.add_provider_customer(int(provider), autonomous_system.asn)
            else:
                others.append(autonomous_system)
        provider_pool = mids if mids else tier1_asns
        for autonomous_system in others:
            providers = rng.choice(
                provider_pool, size=min(2, len(provider_pool)), replace=False
            )
            for provider in providers:
                topology.add_provider_customer(int(provider), autonomous_system.asn)
        return topology

    def _build_routing(
        self, rng: np.random.Generator
    ) -> tuple[RouteViewsCollector, RoutingTable]:
        config = self.config
        announcements = []
        visible = []
        for allocation in self.allocations:
            announcement = Announcement(
                prefix=allocation.prefix, origin_asn=allocation.asn, stable=True
            )
            announcements.append(announcement)
            if rng.random() >= config.rv_hidden_rate:
                visible.append(announcement)
            # Occasionally a flapping more-specific.
            if allocation.prefix.length <= 22 and rng.random() < 0.03:
                sub = next(allocation.prefix.subprefixes(allocation.prefix.length + 1))
                flap = Announcement(
                    prefix=sub, origin_asn=allocation.asn, stable=False
                )
                announcements.append(flap)
                visible.append(flap)
        collector = RouteViewsCollector(visible, seed=config.seed)
        return collector, RoutingTable(announcements)

    def _build_fabric(
        self,
        topology: AsTopology,
        tier1: list[AutonomousSystem],
        cdns: list[AutonomousSystem],
        isp_as: AutonomousSystem,
        teu1_as: AutonomousSystem,
        teu2_as: AutonomousSystem,
        rng: np.random.Generator,
    ) -> IxpFabric:
        config = self.config
        continent_of_asn = {
            a.asn: a.continent.value for a in self.ases
        }
        pinned = {isp_as.asn, teu1_as.asn, teu2_as.asn}
        ixps = []
        for spec in config.ixps:
            home = IXP_REGION_CONTINENTS[spec.region]
            members: set[int] = set()
            for autonomous_system in self.ases:
                asn = autonomous_system.asn
                if asn in pinned:
                    continue  # membership controlled explicitly below
                if autonomous_system.is_cdn:
                    probability = 0.85 if spec.member_share >= 0.1 else 0.3
                elif asn in {a.asn for a in tier1}:
                    probability = 0.95 if spec.member_share >= 0.2 else 0.4
                elif autonomous_system.continent.value in home:
                    probability = spec.member_share
                else:
                    probability = spec.member_share * config.remote_member_factor
                if rng.random() < probability:
                    members.add(asn)
            if spec.code in config.tus1_host_ixps:
                members.add(isp_as.asn)
            if spec.code in config.teu1_host_ixps:
                members.add(teu1_as.asn)
            if spec.code in config.teu2_member_ixps:
                members.add(teu2_as.asn)
            # The TUS1 host's routes verifiably never cross CE1 (the
            # paper cannot find its space at that vantage point).
            excluded = frozenset({isp_as.asn}) if spec.code == "CE1" else frozenset()
            ixps.append(
                Ixp(
                    code=spec.code,
                    region=spec.region,
                    member_asns=frozenset(members),
                    capture_share=spec.capture_share,
                    sampling_factor=spec.sampling_factor,
                    home_continents=frozenset(home),
                    excluded_asns=excluded,
                )
            )
        return IxpFabric(
            ixps,
            topology,
            max_asn=self._next_asn - 1,
            continent_of_asn=continent_of_asn,
        )

    def _build_telescopes(
        self,
        tus1_blocks: np.ndarray,
        teu1_blocks: np.ndarray,
        teu2_blocks: np.ndarray,
        rng: np.random.Generator,
    ) -> dict[str, Telescope]:
        config = self.config
        # The lent-out pool is sticky: mostly the same subscriber blocks
        # every day, with a small daily churn — otherwise a week of data
        # would mark nearly every TEU1 block active at some point, which
        # contradicts the paper's 7-day coverage.
        lent: dict[int, np.ndarray] = {}
        lent_count = int(round(len(teu1_blocks) * config.teu1_lent_fraction))
        base = rng.choice(teu1_blocks, size=lent_count, replace=False)
        # Daily churn recycles a small fixed buffer of spare blocks, so
        # the never-lent remainder stays stably dark across the week.
        churn = max(1, lent_count // 20)
        spare_pool = np.setdiff1d(teu1_blocks, base)
        buffer = spare_pool[: min(churn, len(spare_pool))]
        for day in range(config.num_days):
            drop = rng.choice(len(base), size=len(buffer), replace=False)
            today = np.concatenate([np.delete(base, drop), buffer])
            lent[day] = np.unique(today)
        return {
            "TUS1": Telescope(code="TUS1", region="NA", blocks=tus1_blocks),
            "TEU1": Telescope(
                code="TEU1",
                region="CE",
                blocks=teu1_blocks,
                blocked_ports=frozenset({23, 445}),
                lent_blocks_by_day=lent,
            ),
            "TEU2": Telescope(code="TEU2", region="CE", blocks=teu2_blocks),
        }

    # -- traffic ----------------------------------------------------------

    def _build_traffic(
        self,
        index: BlockIndex,
        registry: ASRegistry,
        telescopes: dict[str, Telescope],
        rng: np.random.Generator,
    ) -> DailyTrafficMix:
        mix = DailyTrafficMix()
        active_blocks = index.blocks_in_state(BlockState.ACTIVE, BlockState.MIXED)
        active_asns = index.asn_of(active_blocks)

        self._add_scan_campaigns(mix, index, telescopes, active_blocks, active_asns, rng)
        self._add_udp_noise(mix, index, active_blocks, active_asns, rng)
        self._add_backscatter(mix, index, telescopes, active_blocks, active_asns, rng)
        self._add_spoofing(
            mix, index, registry, telescopes, active_blocks, active_asns, rng
        )
        self._add_production(mix, index, registry, telescopes, rng)
        self._add_misconfig(mix, index, active_blocks, active_asns, rng)
        return mix

    def _campaign_weights(
        self, index: BlockIndex, spec: CampaignSpec, rng: np.random.Generator
    ) -> np.ndarray:
        from repro.world.ground_truth import _COUNTRY_CONTINENTS  # noqa: PLC0415

        weights = np.ones(len(index), dtype=np.float64)
        continents = _COUNTRY_CONTINENTS[index.country_index]
        for continent, factor in spec.region_bias.items():
            weights[continents == continent.value] *= factor
        for as_type, factor in spec.type_bias.items():
            weights[index.type_index == type_index_of(as_type)] *= factor
        if spec.locality == "redis-footprint":
            mask = (continents == Continent.NORTH_AMERICA.value) | (
                index.country_index == country_index_of("CH")
            )
            weights[~mask] = 0.0
        elif spec.locality == "teu1-region":
            mask = continents == Continent.EUROPE.value
            weights[~mask] = 0.0
        # Campaign-specific partial coverage: each campaign only ever
        # touches a stable pseudo-random subset of the space, so blocks
        # see different campaign mixtures (spreads per-/24 mean sizes).
        coverage = 0.45 + 0.5 * rng.random()
        keep = rng.random(len(index)) < coverage
        weights[~keep] = 0.0
        return weights

    def _add_scan_campaigns(
        self,
        mix: DailyTrafficMix,
        index: BlockIndex,
        telescopes: dict[str, Telescope],
        active_blocks: np.ndarray,
        active_asns: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        specs = standard_campaign_specs()
        total_budget = config.scan_pkts_per_block_day * len(index)
        total_intensity = sum(spec.intensity for spec in specs)
        blacklist = np.concatenate(
            [telescopes["TUS1"].blocks, telescopes["TEU1"].blocks]
        )
        size_options = (0.0, 0.04, 0.12, 0.30)
        for i, spec in enumerate(specs):
            weights = self._campaign_weights(index, spec, rng)
            if weights.sum() == 0:
                continue
            option_share = size_options[i % len(size_options)]
            size_model = PacketSizeModel(
                sizes=(40, 48, 52, 60),
                weights=(
                    1.0 - option_share - 0.01,
                    option_share,
                    0.007,
                    0.003,
                ),
            )
            sources = make_sources(
                active_blocks, active_asns, spec.num_sources, rng
            )
            mix.add(
                ScanCampaign(
                    name=spec.name,
                    sources=sources,
                    ports=spec.ports,
                    port_weights=spec.port_weights,
                    target_blocks=index.blocks,
                    target_weights=weights,
                    probes_per_day=int(
                        total_budget * spec.intensity / total_intensity
                    ),
                    size_model=size_model,
                    avoid_blocks=blacklist if spec.respects_blacklist else None,
                    weekday_profile=spec.weekday_profile,
                )
            )

    def _add_udp_noise(
        self,
        mix: DailyTrafficMix,
        index: BlockIndex,
        active_blocks: np.ndarray,
        active_asns: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        sources = make_sources(active_blocks, active_asns, 40, rng)
        mix.add(
            UdpRadiationActor(
                target_blocks=index.blocks,
                source_ips=np.array([s.ip for s in sources], dtype=np.uint32),
                source_asns=np.array([s.asn for s in sources], dtype=np.int32),
                packets_per_day=int(config.udp_pkts_per_block_day * len(index)),
            )
        )

    def _add_backscatter(
        self,
        mix: DailyTrafficMix,
        index: BlockIndex,
        telescopes: dict[str, Telescope],
        active_blocks: np.ndarray,
        active_asns: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        sources = make_sources(active_blocks, active_asns, 80, rng)
        victims = [
            Victim(ip=s.ip, asn=s.asn, service_port=int(port))
            for s, port in zip(
                sources, rng.choice([80, 443, 53], size=len(sources))
            )
        ]
        scan_budget = config.scan_pkts_per_block_day * len(index)
        mix.add(
            BackscatterActor(
                victims=victims,
                packets_per_day=int(scan_budget * config.backscatter_share),
                # Concentrate on the modelled space (importance sampling
                # of the uniform spray, like the spoofer sources).
                dst_blocks=np.concatenate([index.blocks, self.unrouted_blocks]),
            )
        )
        # Day-0 DDoS event whose backscatter floods the TEU2 region,
        # pushing those blocks over the volume threshold on April 24.
        teu2 = telescopes["TEU2"]
        neighbourhood = np.unique(
            np.concatenate(
                [teu2.blocks, teu2.blocks + 1, teu2.blocks - 1]
            )
        )
        # The April-24 event is a reflection attack: its backscatter is
        # UDP, which also reproduces TEU2's UDP-heavy traffic mix.
        from repro.traffic.packets import PROTO_UDP, udp_ibr_size_model  # noqa: PLC0415

        mix.add(
            BackscatterActor(
                victims=victims[:8],
                packets_per_day=config.teu2_day0_burst_pkts,
                dst_blocks=neighbourhood,
                active_days=frozenset({0}),
                proto=PROTO_UDP,
                size_model=udp_ibr_size_model(),
            )
        )

    def _add_spoofing(
        self,
        mix: DailyTrafficMix,
        index: BlockIndex,
        registry: ASRegistry,
        telescopes: dict[str, Telescope],
        active_blocks: np.ndarray,
        active_asns: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        attackers = np.array(
            [a.asn for a in registry if not a.spoof_filtered], dtype=np.int32
        )
        if len(attackers) == 0:
            attackers = np.array([self.ases[0].asn], dtype=np.int32)
        victims = make_sources(active_blocks, active_asns, 120, rng)
        source_space = np.concatenate([index.blocks, self.unrouted_blocks])
        budget = int(config.spoof_ground_per_block_day * len(source_space))
        # Floods impersonate lively /16s (legitimate-looking sources
        # defeat ingress ACLs): spoofers copy ranges with visible real
        # activity, never the unrouted baseline and rarely dark-heavy
        # legacy or telescope ranges.
        slash16 = index.blocks >> 8
        dark_flag = np.isin(
            index.state,
            [int(BlockState.DARK), int(BlockState.TELESCOPE)],
        ).astype(np.float64)
        anchors_all, inverse = np.unique(slash16, return_inverse=True)
        dark_share = np.bincount(inverse, weights=dark_flag) / np.bincount(inverse)
        lively_16s = anchors_all[dark_share < 0.5]
        if len(lively_16s) == 0:
            lively_16s = anchors_all
        if config.spoof_flood_mixed_anchors:
            # ~3:1 preference for lively ranges; dark-heavy ranges are
            # still impersonated occasionally (nothing stops a spoofer).
            announced_16s = np.concatenate(
                [np.repeat(lively_16s, 2), anchors_all]
            )
        else:
            announced_16s = lively_16s
        # During the measurement week no flood impersonated ranges
        # overlapping the operational telescopes — attested by the
        # paper's ability to recover their space over seven days.
        telescope_16s = np.unique(
            np.concatenate([t.blocks for t in telescopes.values()]) >> 8
        )
        remaining = announced_16s[~np.isin(announced_16s, telescope_16s)]
        if len(remaining):
            announced_16s = remaining
        mix.add(
            SpoofedFloodActor(
                attacker_asns=attackers,
                victim_ips=np.array([v.ip for v in victims], dtype=np.uint32),
                victim_asns=np.array([v.asn for v in victims], dtype=np.int32),
                uniform_source_blocks=source_space,
                uniform_packets_per_day=budget,
                subnet_anchors=announced_16s,
                floods_per_day=config.spoof_floods_per_day,
                flood_pkts_per_block=config.spoof_flood_pkts_per_block,
            )
        )

    def _add_production(
        self,
        mix: DailyTrafficMix,
        index: BlockIndex,
        registry: ASRegistry,
        telescopes: dict[str, Telescope],
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        state = index.state
        is_active = state == int(BlockState.ACTIVE)
        is_mixed = state == int(BlockState.MIXED)
        is_low = state == int(BlockState.LOW_ACTIVE)
        selected = is_active | is_mixed | is_low
        blocks = index.blocks[selected]
        asns = index.asn[selected]
        count = len(blocks)
        if count == 0:
            return
        inbound = rng.lognormal(
            mean=np.log(config.production_inbound_mean), sigma=0.6, size=count
        )
        outbound = rng.lognormal(
            mean=np.log(config.production_outbound_mean), sigma=0.6, size=count
        )
        sel_state = state[selected]
        # Lightly-used client space: visible outbound only — the inbound
        # data path is asymmetric w.r.t. the IXPs (so its observed
        # inbound stays IBR-like and the block classifies gray).
        mixed_mask = sel_state == int(BlockState.MIXED)
        inbound[mixed_mask] = 0.0
        outbound[mixed_mask] = rng.lognormal(
            mean=np.log(config.mixed_outbound_mean), sigma=0.8, size=int(mixed_mask.sum())
        )
        low_mask = sel_state == int(BlockState.LOW_ACTIVE)
        low_daily = config.active_min_week_packets / 14.0
        inbound[low_mask] = np.maximum(low_daily, 8.0)
        outbound[low_mask] = np.maximum(low_daily * 0.7, 6.0)

        ack_share, ack_size = self._ack_profiles(count, rng)
        weekend = self._weekend_factors(index, selected, rng)

        # Remote peers are heavily-used server space: data toward
        # clients rides asymmetric paths the IXPs never see, and CDN
        # sinks must only receive their ACK stream (the volume filter,
        # not the size filter, is what catches them).
        server_mask = is_active
        server_blocks = index.blocks[server_mask]
        server_asns = index.asn[server_mask]
        if len(server_blocks) == 0:
            server_blocks, server_asns = blocks, asns
        remote_pool = make_sources(
            server_blocks, server_asns, min(3000, max(len(server_blocks) * 4, 8)), rng
        )
        remote_ips = np.array([s.ip for s in remote_pool], dtype=np.uint32)
        remote_asns = np.array([s.asn for s in remote_pool], dtype=np.int32)

        mix.add(
            ProductionTraffic(
                blocks=blocks,
                asns=asns,
                inbound_pkts_per_day=inbound.astype(np.int64),
                outbound_pkts_per_day=outbound.astype(np.int64),
                ack_share=ack_share,
                weekend_factor=weekend,
                remote_ips=remote_ips,
                remote_asns=remote_asns,
                ack_packet_size=ack_size,
            )
        )

        cdn_mask = state == int(BlockState.CDN_SINK)
        cdn_blocks = index.blocks[cdn_mask]
        if len(cdn_blocks):
            cdn_inbound = rng.lognormal(
                mean=np.log(config.cdn_inbound_mean), sigma=0.3, size=len(cdn_blocks)
            )
            # The ACK upstream comes from clients (lightly-used space).
            client_src = blocks if len(blocks) else server_blocks
            client_asn_pool = asns if len(asns) else server_asns
            clients = make_sources(client_src, client_asn_pool, 800, rng)
            mix.add(
                CdnAckSink(
                    blocks=cdn_blocks,
                    asns=index.asn[cdn_mask],
                    inbound_pkts_per_day=cdn_inbound.astype(np.int64),
                    client_ips=np.array([s.ip for s in clients], dtype=np.uint32),
                    client_asns=np.array([s.asn for s in clients], dtype=np.int32),
                )
            )

        # TEU1's lent-out blocks behave like eyeball space on their day.
        teu1 = telescopes["TEU1"]
        if teu1.lent_blocks_by_day:
            mix.add(
                _Teu1LentTraffic(
                    telescope=teu1,
                    asn=_asn_of(registry, "Research-ISP-DE"),
                    remote_ips=remote_ips,
                    remote_asns=remote_asns,
                    pkts_per_block=config.production_inbound_mean * 0.4,
                )
            )

    def _ack_profiles(
        self, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-active-block inbound ACK profile (Table 3 structure).

        Returns (ack share of inbound packets, ACK packet size):

        * *heavy* blocks (download-dominated): >50 % bare 40 B ACKs —
          their median is 40 B, the median feature's FPs at every
          threshold;
        * *mid* blocks: ~half their packets are 44 B option-carrying
          ACKs — median 44 B, FPs at the 44/46 B thresholds only;
        * *pure-ACK* blocks: nearly all ACKs — even the *mean* stays
          under 44 B, the average feature's rare FPs;
        * normal blocks: data-dominated, TN for both features.
        """
        p_heavy, p_mid, p_pure = self.config.ack_profile_probs
        draw = rng.random(count)
        ack = 0.10 + 0.30 * rng.random(count)  # normal blocks
        ack_size = np.full(count, 40, dtype=np.int64)
        heavy = draw < p_heavy
        ack[heavy] = 0.58 + 0.17 * rng.random(int(heavy.sum()))
        mid = (draw >= p_heavy) & (draw < p_heavy + p_mid)
        ack[mid] = 0.50 + 0.08 * rng.random(int(mid.sum()))
        ack_size[mid] = 44
        pure = (draw >= p_heavy + p_mid) & (draw < p_heavy + p_mid + p_pure)
        ack[pure] = 0.97
        return ack, ack_size

    def _weekend_factors(
        self, index: BlockIndex, selected: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        quiet_types = {
            type_index_of(ASType.ENTERPRISE),
            type_index_of(ASType.EDUCATION),
        }
        type_idx = index.type_index[selected]
        factors = np.where(
            np.isin(type_idx, list(quiet_types)),
            self.config.weekend_factor_quiet,
            0.85,
        )
        jitter = 0.9 + 0.2 * rng.random(len(factors))
        return np.clip(factors * jitter, 0.02, 1.0)

    def _add_misconfig(
        self,
        mix: DailyTrafficMix,
        index: BlockIndex,
        active_blocks: np.ndarray,
        active_asns: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        dark = index.truly_dark_blocks()
        if len(dark) == 0:
            return
        num_targets = max(1, int(len(dark) * config.misconfig_dark_share))
        targets = rng.choice(dark, size=num_targets, replace=False)
        sources = make_sources(active_blocks, active_asns, 20, rng)
        mix.add(
            MisconfigurationNoise(
                target_blocks=targets,
                source_ips=np.array([s.ip for s in sources], dtype=np.uint32),
                source_asns=np.array([s.asn for s in sources], dtype=np.int32),
            )
        )

    def _build_datasets(
        self,
        index: BlockIndex,
        registry: ASRegistry,
        collector: RouteViewsCollector,
    ) -> WorldDatasets:
        config = self.config
        rng = config.child_rng("datasets")
        truly_active = index.truly_active_blocks()
        truly_dark = index.truly_dark_blocks()
        eyeball_mask = index.type_index == type_index_of(ASType.ISP)
        eyeball_active = np.intersect1d(index.blocks[eyeball_mask], truly_active)
        liveness = [
            LivenessDataset.observe(
                "censys", truly_active, truly_dark,
                recall=config.censys_recall,
                stale_rate=config.liveness_stale_rate,
                rng=rng,
            ),
            LivenessDataset.observe(
                "ndt", eyeball_active, truly_dark,
                recall=config.ndt_recall,
                stale_rate=config.liveness_stale_rate * 0.3,
                rng=rng,
            ),
            LivenessDataset.observe(
                "isi", truly_active, truly_dark,
                recall=config.isi_recall,
                stale_rate=config.liveness_stale_rate,
                rng=rng,
            ),
        ]
        geodb = GeoDatabase.from_ground_truth(
            blocks=index.blocks,
            true_codes=index.country_codes_of(index.blocks),
            error_rate=config.geodb_error_rate,
            rng=rng,
        )
        pfx2as = PrefixToAsMap.from_routing_table(collector.daily_table(0))
        as2org = AsToOrgMap.from_registry(registry)
        ipinfo = AsClassification.from_registry(
            registry, error_rate=config.ipinfo_error_rate, rng=rng
        )
        return WorldDatasets(
            liveness=liveness,
            geodb=geodb,
            pfx2as=pfx2as,
            as2org=as2org,
            ipinfo=ipinfo,
        )


@dataclass(slots=True)
class _Teu1LentTraffic:
    """Production traffic from TEU1 blocks lent to end users that day."""

    telescope: Telescope
    asn: int
    remote_ips: np.ndarray
    remote_asns: np.ndarray
    pkts_per_block: float

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        lent = self.telescope.lent_blocks_by_day.get(day)
        if lent is None or len(lent) == 0:
            return FlowTable.empty()
        production = ProductionTraffic(
            blocks=np.asarray(lent, dtype=np.int64),
            asns=np.full(len(lent), self.asn, dtype=np.int32),
            inbound_pkts_per_day=np.full(
                len(lent), int(self.pkts_per_block), dtype=np.int64
            ),
            outbound_pkts_per_day=np.full(
                len(lent), int(self.pkts_per_block * 0.8), dtype=np.int64
            ),
            ack_share=np.full(len(lent), 0.3),
            weekend_factor=np.ones(len(lent)),
            remote_ips=self.remote_ips,
            remote_asns=self.remote_asns,
        )
        return production.generate(day, rng)


def _asn_of(registry: ASRegistry, name: str) -> int:
    for autonomous_system in registry:
        if autonomous_system.name == name:
            return autonomous_system.asn
    raise KeyError(name)
