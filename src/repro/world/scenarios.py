"""Canonical worlds at the three scales, with process-level caching.

Benches and tests share worlds through these factories so a pytest
session builds each scale at most once per seed.
"""

from __future__ import annotations

from functools import lru_cache

from repro.world.builder import World, build_world
from repro.world.config import micro_config, paper_config, small_config
from repro.world.observe import Observatory


@lru_cache(maxsize=4)
def paper_world(seed: int = 7) -> World:
    """The benchmark-scale world (the paper's setting, scaled)."""
    return build_world(paper_config(seed))


@lru_cache(maxsize=4)
def small_world(seed: int = 7) -> World:
    """Integration-test scale world."""
    return build_world(small_config(seed))


@lru_cache(maxsize=4)
def micro_world(seed: int = 7) -> World:
    """Unit-test scale world."""
    return build_world(micro_config(seed))


@lru_cache(maxsize=4)
def paper_observatory(seed: int = 7) -> Observatory:
    """Shared observation cache over the benchmark-scale world."""
    return Observatory(paper_world(seed))


@lru_cache(maxsize=4)
def small_observatory(seed: int = 7) -> Observatory:
    """Shared observation cache over the small world."""
    return Observatory(small_world(seed))


@lru_cache(maxsize=4)
def micro_observatory(seed: int = 7) -> Observatory:
    """Shared observation cache over the micro world."""
    return Observatory(micro_world(seed))
