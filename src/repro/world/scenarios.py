"""Canonical worlds at the three scales, plus adversarial world events.

Benches and tests share worlds through the cached factories so a pytest
session builds each scale at most once per seed.  The cached worlds are
shared and must never be mutated; the robustness catalog
(:mod:`repro.robustness`) therefore builds *fresh* worlds and applies
the world events defined here — flash re-activation of dark space and
mid-day route leaks/hijacks steering traffic between vantages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.bgp.events import RouteEvent
from repro.traffic.flows import FlowTable
from repro.traffic.mix import DailyTrafficMix, TrafficActor
from repro.traffic.production import ProductionTraffic
from repro.world.builder import World, build_world
from repro.world.config import (
    giant_config,
    micro_config,
    paper_config,
    small_config,
)
from repro.world.observe import Observatory


@lru_cache(maxsize=4)
def paper_world(seed: int = 7) -> World:
    """The benchmark-scale world (the paper's setting, scaled)."""
    return build_world(paper_config(seed))


def giant_world(seed: int = 7) -> World:
    """Stress-scale world (≥50 M IXP rows/day).

    Deliberately *not* cached: a giant day is hundreds of MiB per view,
    and its callers (the kernel benchmarks) observe it through a
    :class:`~repro.world.capture_cache.CaptureCache` exactly once.
    """
    return build_world(giant_config(seed))


@lru_cache(maxsize=4)
def small_world(seed: int = 7) -> World:
    """Integration-test scale world."""
    return build_world(small_config(seed))


@lru_cache(maxsize=4)
def micro_world(seed: int = 7) -> World:
    """Unit-test scale world."""
    return build_world(micro_config(seed))


@lru_cache(maxsize=4)
def paper_observatory(seed: int = 7) -> Observatory:
    """Shared observation cache over the benchmark-scale world."""
    return Observatory(paper_world(seed))


@lru_cache(maxsize=4)
def small_observatory(seed: int = 7) -> Observatory:
    """Shared observation cache over the small world."""
    return Observatory(small_world(seed))


@lru_cache(maxsize=4)
def micro_observatory(seed: int = 7) -> Observatory:
    """Shared observation cache over the micro world."""
    return Observatory(micro_world(seed))


# -- world events ------------------------------------------------------
#
# Events change what the world *does* mid-campaign without changing how
# it was built: they are applied to fresh (never cached) worlds by the
# robustness catalog.


@dataclass(slots=True)
class DayGatedActor:
    """Any traffic actor, silent before ``start_day``.

    The building block of flash events: wrap an actor and the world
    only starts emitting its traffic mid-campaign.
    """

    actor: TrafficActor
    start_day: int

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """The wrapped actor's flows, or nothing before the gate opens."""
        if day < self.start_day:
            return FlowTable.empty()
        return self.actor.generate(day, rng)


@dataclass(slots=True)
class FlashReactivation:
    """A provider lights up formerly dark space from ``start_day`` on.

    The flash event of the sparse-anomaly literature: a contiguous run
    of dark /24s suddenly carries ordinary production traffic.  Ground
    truth built at world-generation time still calls the blocks dark, so
    scenario scoring must treat ``blocks`` as day-active overrides — the
    classifier is now *wrong* to serve them, within the scenario's
    envelope.
    """

    blocks: np.ndarray
    asns: np.ndarray
    remote_ips: np.ndarray
    remote_asns: np.ndarray
    inbound_pkts_per_day: float
    start_day: int
    _production: ProductionTraffic | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.blocks = np.asarray(self.blocks, dtype=np.int64)
        self.asns = np.asarray(self.asns, dtype=np.int32)
        if len(self.blocks) == 0:
            raise ValueError("flash re-activation needs blocks")
        count = len(self.blocks)
        inbound = np.full(count, int(self.inbound_pkts_per_day), dtype=np.int64)
        self._production = ProductionTraffic(
            blocks=self.blocks,
            asns=self.asns,
            inbound_pkts_per_day=inbound,
            outbound_pkts_per_day=(inbound * 0.65).astype(np.int64),
            ack_share=np.full(count, 0.30),
            weekend_factor=np.ones(count),
            remote_ips=self.remote_ips,
            remote_asns=self.remote_asns,
        )

    def generate(self, day: int, rng: np.random.Generator) -> FlowTable:
        """Production traffic over the re-activated space, once lit."""
        if day < self.start_day:
            return FlowTable.empty()
        return self._production.generate(day, rng)


@dataclass(slots=True)
class SteeredTrafficMix:
    """A traffic mix whose event-day flows are steered to another AS.

    Models the traffic side of a route leak/hijack: on active event
    days, a share of the flows destined into the event prefix is
    delivered toward the leaking/hijacking AS instead of the legitimate
    origin (``dst_asn`` is rewritten *before* ground-truth annotation,
    which only fills unset values).  Receiver-side IXP engagement
    follows the new AS, so the affected blocks literally move between
    vantage points mid-campaign — the space itself is unchanged.
    """

    base: DailyTrafficMix
    event: RouteEvent
    #: Share of affected flows steered on an event day ("mid-day" leak:
    #: roughly half the day's traffic took the leaked path).
    shift_share: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.shift_share <= 1.0:
            raise ValueError("shift_share must be in (0, 1]")

    @property
    def actors(self) -> list[TrafficActor]:
        """The underlying actor ensemble (pass-through)."""
        return self.base.actors

    def add(self, actor: TrafficActor) -> None:
        """Register an actor on the underlying mix."""
        self.base.add(actor)

    def generate_day(self, day: int, rng: np.random.Generator) -> FlowTable:
        """The base mix's day, with event-day flows steered."""
        flows = self.base.generate_day(day, rng)
        if not self.event.active_on(day) or len(flows) == 0:
            return flows
        first = self.event.prefix.first_block()
        last = first + self.event.prefix.num_blocks()
        dst_blocks = flows.dst_blocks()
        affected = (dst_blocks >= first) & (dst_blocks < last)
        steer = affected & (rng.random(len(flows)) < self.shift_share)
        if not steer.any():
            return flows
        dst_asn = flows.dst_asn.copy()
        dst_asn[steer] = self.event.by_asn
        return FlowTable(
            src_ip=flows.src_ip,
            dst_ip=flows.dst_ip,
            proto=flows.proto,
            dport=flows.dport,
            packets=flows.packets,
            bytes=flows.bytes,
            sender_asn=flows.sender_asn,
            dst_asn=dst_asn,
            spoofed=flows.spoofed,
        )
