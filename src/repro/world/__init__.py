"""World: the synthetic Internet that substitutes for the paper's
proprietary vantage data.

A :class:`~repro.world.builder.World` bundles the address plan, AS
registry, topology, RIB collector, traffic actors, vantage points
(IXPs, telescopes, ISP) and auxiliary datasets, all generated
deterministically from a :class:`~repro.world.config.WorldConfig`.
"""

from repro.world.config import WorldConfig
from repro.world.ground_truth import BlockIndex, BlockState
from repro.world.builder import World, build_world
from repro.world.observe import DayObservation, Observatory

__all__ = [
    "WorldConfig",
    "BlockIndex",
    "BlockState",
    "World",
    "build_world",
    "DayObservation",
    "Observatory",
]
