"""The IPv6 world: a small second internet for the same engine.

Section 9 of the paper defers IPv6 meta-telescopes to future work
because the space cannot be enumerated, hitlists are incomplete, and
scanning behaves differently.  This module builds the synthetic ground
truth that future-work needs, shaped so the *unchanged* inference
engine can run over it end to end:

* **Orgs** hold /40 allocations inside global unicast (``2000::/3`` —
  which also keeps every upper-64-bit engine key below ``2**63``, the
  int64-safety requirement of :mod:`repro.net.family`).  Each org
  materialises a handful of /48 *sites*: truly **dark** sites (no host
  ever answers or sends), **loud** active sites (production hosts that
  source and sink payload traffic) and **quiet** active sites (lit
  infrastructure that never sources — invisible to a traffic-only
  pipeline, exactly what hitlists are for).
* **Scanners are BGP-reactive** (the documented v6-scanning finding:
  scanning concentrates on announced space and follows announcements
  within hours).  A scanner only targets an org once its prefix is in
  the RIB, so late-announced orgs receive their first scan on their
  announce day — nothing before.
* **The hitlist is incomplete** (``hitlist_recall < 1``): each active
  site is listed only with that probability.  Quiet sites missing from
  the hitlist are indistinguishable from dark space in traffic and
  become the candidate filter's false positives — precision < 1 by
  construction, as the paper warns.
* **A route leak** announces documentation space (``2001:db8::/32``)
  and scanners spray it: the candidate enumeration alone would serve
  it, the engine's special-purpose stage drops it.
* The v4 44-byte fingerprint does **not** transfer: a bare IPv6 TCP
  SYN is already 60 bytes (40-byte header + 20-byte TCP), so scan
  packets are 60/68 bytes and the v6 thresholds default to 64/68.

Everything is derived from the config seed through the same
``child_rng`` discipline as :mod:`repro.world.config`, so worlds and
traffic are bit-reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.bgp.rib import Announcement, RoutingTable
from repro.net.family import IPV6
from repro.net.ipv6 import Ipv6Prefix
from repro.traffic.flows import FlowTable
from repro.traffic.packets import PROTO_TCP, PROTO_UDP
from repro.vantage.sampling import VantageDayView

__all__ = [
    "Ipv6WorldConfig",
    "Ipv6Org",
    "Ipv6Collector",
    "Ipv6World",
    "build_ipv6_world",
    "micro_ipv6_config",
    "small_ipv6_config",
    "paper_ipv6_config",
    "giant_ipv6_config",
    "micro_ipv6_world",
    "small_ipv6_world",
    "paper_ipv6_world",
    "giant_ipv6_world",
    "ipv6_day_view",
    "ipv6_views",
]

#: Top-40-bit value of org 0's /40 (2001:d00::/40; clear of the IANA
#: special rows — 2001::/23 ends at 2001:1ff::, documentation is db8).
_ORG_PREFIX_BASE = 0x20010D0000
#: Top-40-bit value of scanner 0's /40 (2a0e:b00::/40).
_SCANNER_PREFIX_BASE = 0x2A0E0B0000
#: The leaked special-purpose prefix scanners spray (documentation).
LEAKED_SPECIAL_PREFIX = "2001:db8::/32"
#: Origin ASN of the route leak.
LEAK_ASN = 64666
#: /48 site id inside the leaked prefix that receives scan traffic.
LEAKED_SITE = Ipv6Prefix.parse(LEAKED_SPECIAL_PREFIX).first_site()

_SCAN_PORTS = (22, 23, 80, 443, 3389, 8080)
_PRODUCTION_PORTS = (53, 80, 443)


@dataclass(frozen=True, slots=True)
class Ipv6WorldConfig:
    """Knobs of the simulated IPv6 internet (all sizes per org/site/day)."""

    seed: int = 7
    num_days: int = 3
    num_orgs: int = 12
    #: /48 sites materialised per org (dark + quiet + loud).
    sites_per_org: int = 6
    dark_sites_per_org: int = 3
    #: Active-but-never-sourcing sites (the hitlist's job to catch).
    quiet_sites_per_org: int = 1
    #: Orgs announced only from ``max(1, num_days // 2)`` (scanner
    #: reactivity is observable on the announce day).
    late_announce_orgs: int = 2
    #: Orgs never announced at all: their sites still receive a trickle
    #: of stale-hitlist replay scanning (scanner 0 working off an old
    #: target list), so they are *observed* yet unrouted — the candidate
    #: filter's first drop reason.
    unannounced_orgs: int = 1
    num_scanners: int = 3
    scans_per_site_day: int = 24
    production_flows_per_site_day: int = 20
    #: Distinct /64 subnets a scanner spreads over inside one site.
    subnets_per_site: int = 48
    #: Probability an active site appears on the (incomplete) hitlist.
    hitlist_recall: float = 0.75
    #: Packets/day of the backscatter flood hitting one dark site (the
    #: volume stage's test case); 0 disables the flood.
    flood_packets: int = 4000
    #: Per-packet sampling probability of the vantage's IPFIX export.
    sampling_probability: float = 1.0
    #: v6 pipeline thresholds (the 44/48-byte v4 pair does not transfer).
    avg_size_threshold: float = 64.0
    ip_size_threshold: float = 68.0
    volume_threshold_pkts_day: float = 900.0

    def __post_init__(self) -> None:
        if self.dark_sites_per_org + self.quiet_sites_per_org >= self.sites_per_org:
            raise ValueError(
                "need at least one loud site per org: "
                f"{self.sites_per_org} sites cannot hold "
                f"{self.dark_sites_per_org} dark + "
                f"{self.quiet_sites_per_org} quiet"
            )
        if not 0 < self.num_orgs <= 1 << 16:
            raise ValueError(f"num_orgs out of range: {self.num_orgs}")
        if self.late_announce_orgs + self.unannounced_orgs >= self.num_orgs:
            raise ValueError(
                f"{self.num_orgs} orgs cannot hold "
                f"{self.late_announce_orgs} late + "
                f"{self.unannounced_orgs} unannounced — none would be "
                "announced from day 0"
            )
        if self.sites_per_org > 256:
            raise ValueError("a /40 org holds at most 256 /48 sites")
        if not 0.0 < self.sampling_probability <= 1.0:
            raise ValueError(
                f"sampling probability out of range: {self.sampling_probability}"
            )

    def child_rng(self, name: str) -> np.random.Generator:
        """Independent deterministic stream per named purpose."""
        return np.random.default_rng((self.seed, zlib.crc32(name.encode())))


@dataclass(frozen=True, slots=True)
class Ipv6Org:
    """One organisation: a /40 allocation and its materialised sites."""

    name: str
    asn: int
    prefix: Ipv6Prefix
    #: First day the prefix appears in the RIB; ``None`` = never
    #: announced (stale-hitlist replay is its only traffic).
    announce_day: int | None
    dark_sites: tuple[int, ...]
    quiet_sites: tuple[int, ...]
    loud_sites: tuple[int, ...]

    @property
    def active_sites(self) -> tuple[int, ...]:
        """All sites with hosts (quiet + loud)."""
        return self.quiet_sites + self.loud_sites

    @property
    def sites(self) -> tuple[int, ...]:
        """Every materialised site of the org."""
        return self.dark_sites + self.quiet_sites + self.loud_sites


class Ipv6Collector:
    """Route-Views-shaped feed over the v6 announcements.

    Duck-compatible with :class:`repro.bgp.rib.RouteViewsCollector` as
    the facade consumes it (``daily_table(day)``): late orgs enter the
    table on their announce day, and the leaked documentation prefix is
    present from day 0.
    """

    def __init__(self, orgs: Iterable[Ipv6Org], leak: bool = True) -> None:
        self._orgs = tuple(orgs)
        self._leak = leak

    def daily_table(self, day: int) -> RoutingTable:
        """The announcements visible on ``day`` (family-tagged IPv6)."""
        announcements = [
            Announcement(prefix=org.prefix, origin_asn=org.asn)
            for org in self._orgs
            if org.announce_day is not None and org.announce_day <= day
        ]
        if self._leak:
            announcements.append(
                Announcement(
                    prefix=Ipv6Prefix.parse(LEAKED_SPECIAL_PREFIX),
                    origin_asn=LEAK_ASN,
                )
            )
        return RoutingTable(announcements, family=IPV6)


@dataclass(frozen=True, slots=True)
class Ipv6World:
    """The built world: orgs, scanners, hitlist, RIB feed, ground truth."""

    config: Ipv6WorldConfig
    orgs: tuple[Ipv6Org, ...]
    #: Scanner source /48 site ids (outside org space, inside 2000::/3).
    scanner_sites: tuple[int, ...]
    #: The incomplete hitlist: /48s of *known* active addresses.
    hitlist_sites: frozenset[int]
    #: Dark site receiving the backscatter flood (None when disabled).
    flood_site: int | None
    #: Dark site scanned exclusively over UDP (fails the TCP stage).
    udp_only_site: int | None
    collector: Ipv6Collector

    def dark_sites(self, day: int | None = None) -> frozenset[int]:
        """Truly dark /48s of *announced* orgs (optionally by ``day``).

        Never-announced orgs' dark sites are excluded: unrouted space
        is out of scope for a meta-telescope by the paper's own step 5,
        so they do not count against recall.
        """
        return frozenset(
            site
            for org in self.orgs
            if org.announce_day is not None
            and (day is None or org.announce_day <= day)
            for site in org.dark_sites
        )

    def active_sites(self) -> frozenset[int]:
        """All /48s with hosts (the hitlist's target universe)."""
        return frozenset(site for org in self.orgs for site in org.active_sites)

    def asn_of_site(self) -> dict[int, int]:
        """Ground-truth site -> origin-ASN map (leak space -> LEAK_ASN)."""
        mapping = {site: org.asn for org in self.orgs for site in org.sites}
        mapping[LEAKED_SITE] = LEAK_ASN
        return mapping


def build_ipv6_world(config: Ipv6WorldConfig) -> Ipv6World:
    """Materialise the world from its config, deterministically."""
    rng = config.child_rng("ipv6-world")
    late_from = max(1, config.num_days // 2)
    orgs = []
    for index in range(config.num_orgs):
        top40 = _ORG_PREFIX_BASE + index
        prefix = Ipv6Prefix(top40 << 88, 40)
        offsets = rng.choice(256, size=config.sites_per_org, replace=False)
        sites = tuple(int((top40 << 8) + offset) for offset in np.sort(offsets))
        dark = sites[: config.dark_sites_per_org]
        quiet = sites[
            config.dark_sites_per_org
            : config.dark_sites_per_org + config.quiet_sites_per_org
        ]
        loud = sites[config.dark_sites_per_org + config.quiet_sites_per_org :]
        never = index >= config.num_orgs - config.unannounced_orgs
        late = not never and index >= (
            config.num_orgs - config.unannounced_orgs - config.late_announce_orgs
        )
        orgs.append(
            Ipv6Org(
                name=f"org{index:02d}",
                asn=65000 + index,
                prefix=prefix,
                announce_day=None if never else (late_from if late else 0),
                dark_sites=dark,
                quiet_sites=quiet,
                loud_sites=loud,
            )
        )
    scanner_sites = tuple(
        int(((_SCANNER_PREFIX_BASE + index) << 8) | 1)
        for index in range(config.num_scanners)
    )
    hitlist = frozenset(
        site
        for org in orgs
        for site in org.active_sites
        if rng.random() < config.hitlist_recall
    )
    early = [org for org in orgs if org.announce_day == 0 and org.dark_sites]
    flood_site = (
        early[0].dark_sites[0] if config.flood_packets > 0 and early else None
    )
    udp_only_site = None
    for org in early:
        for site in org.dark_sites:
            if site != flood_site:
                udp_only_site = site
                break
        if udp_only_site is not None:
            break
    return Ipv6World(
        config=config,
        orgs=tuple(orgs),
        scanner_sites=scanner_sites,
        hitlist_sites=hitlist,
        flood_site=flood_site,
        udp_only_site=udp_only_site,
        collector=Ipv6Collector(orgs),
    )


def micro_ipv6_config(seed: int = 7) -> Ipv6WorldConfig:
    """CI-smoke scale: runs the full v6 inference in well under a second."""
    return Ipv6WorldConfig(
        seed=seed,
        num_days=2,
        num_orgs=6,
        sites_per_org=4,
        dark_sites_per_org=2,
        quiet_sites_per_org=1,
        late_announce_orgs=1,
        num_scanners=2,
        scans_per_site_day=12,
        production_flows_per_site_day=10,
        subnets_per_site=16,
    )


def small_ipv6_config(seed: int = 7) -> Ipv6WorldConfig:
    """Default interactive scale."""
    return Ipv6WorldConfig(seed=seed)


def paper_ipv6_config(seed: int = 7) -> Ipv6WorldConfig:
    """Tens of orgs, ~50k rows/day (v6 traffic is a sliver of v4's)."""
    return Ipv6WorldConfig(
        seed=seed,
        num_days=5,
        num_orgs=48,
        sites_per_org=8,
        dark_sites_per_org=4,
        quiet_sites_per_org=2,
        late_announce_orgs=6,
        unannounced_orgs=3,
        num_scanners=5,
        scans_per_site_day=30,
        production_flows_per_site_day=24,
    )


def giant_ipv6_config(seed: int = 7) -> Ipv6WorldConfig:
    """Hundreds of orgs, ~400k rows/day."""
    return Ipv6WorldConfig(
        seed=seed,
        num_days=7,
        num_orgs=160,
        sites_per_org=8,
        dark_sites_per_org=4,
        quiet_sites_per_org=2,
        late_announce_orgs=20,
        unannounced_orgs=10,
        num_scanners=8,
        scans_per_site_day=40,
        production_flows_per_site_day=30,
    )


def micro_ipv6_world(seed: int = 7) -> Ipv6World:
    """Build the micro-scale world."""
    return build_ipv6_world(micro_ipv6_config(seed))


def small_ipv6_world(seed: int = 7) -> Ipv6World:
    """Build the small-scale world."""
    return build_ipv6_world(small_ipv6_config(seed))


def paper_ipv6_world(seed: int = 7) -> Ipv6World:
    """Build the paper-scale world."""
    return build_ipv6_world(paper_ipv6_config(seed))


def giant_ipv6_world(seed: int = 7) -> Ipv6World:
    """Build the giant-scale world."""
    return build_ipv6_world(giant_ipv6_config(seed))


class _FlowBatch:
    """Column accumulator for one day's generated rows."""

    def __init__(self) -> None:
        self.src: list[np.ndarray] = []
        self.src_lo: list[np.ndarray] = []
        self.dst: list[np.ndarray] = []
        self.dst_lo: list[np.ndarray] = []
        self.proto: list[np.ndarray] = []
        self.dport: list[np.ndarray] = []
        self.packets: list[np.ndarray] = []
        self.bytes: list[np.ndarray] = []
        self.sender_asn: list[np.ndarray] = []
        self.dst_asn: list[np.ndarray] = []

    def add(
        self,
        src: np.ndarray,
        src_lo: np.ndarray,
        dst: np.ndarray,
        dst_lo: np.ndarray,
        proto: np.ndarray,
        dport: np.ndarray,
        packets: np.ndarray,
        size: np.ndarray,
        sender_asn: int,
        dst_asn: np.ndarray,
    ) -> None:
        count = len(dst)
        self.src.append(np.broadcast_to(src, count))
        self.src_lo.append(np.broadcast_to(src_lo, count))
        self.dst.append(dst)
        self.dst_lo.append(dst_lo)
        self.proto.append(np.broadcast_to(proto, count))
        self.dport.append(dport)
        self.packets.append(packets)
        self.bytes.append(packets * size)
        self.sender_asn.append(np.broadcast_to(np.int32(sender_asn), count))
        self.dst_asn.append(dst_asn)

    def table(self) -> FlowTable:
        if not self.dst:
            return FlowTable.empty("ipv6")
        return FlowTable(
            src_ip=np.concatenate(self.src).astype(np.uint64),
            dst_ip=np.concatenate(self.dst).astype(np.uint64),
            proto=np.concatenate(self.proto),
            dport=np.concatenate(self.dport),
            packets=np.concatenate(self.packets),
            bytes=np.concatenate(self.bytes),
            sender_asn=np.concatenate(self.sender_asn),
            dst_asn=np.concatenate(self.dst_asn),
            src_ip_lo=np.concatenate(self.src_lo).astype(np.uint64),
            dst_ip_lo=np.concatenate(self.dst_lo).astype(np.uint64),
            family="ipv6",
        )


def _site_keys(
    site: int, count: int, subnets: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` /64 engine keys spread over a site's first ``subnets``."""
    return (np.uint64(site) << np.uint64(16)) + rng.integers(
        0, subnets, size=count, dtype=np.uint64
    )


def _scan_batch(
    batch: _FlowBatch,
    world: Ipv6World,
    scanner_index: int,
    site: int,
    dst_asn: int,
    count: int,
    rng: np.random.Generator,
    udp: bool = False,
) -> None:
    """One scanner's probes toward one site on one day."""
    config = world.config
    src_site = world.scanner_sites[scanner_index]
    dst = _site_keys(site, count, config.subnets_per_site, rng)
    dst_lo = rng.integers(1, 1 << 20, size=count, dtype=np.uint64)
    packets = rng.integers(1, 4, size=count, dtype=np.int64)
    # A bare v6 SYN is 60 bytes; ~1 in 5 carries one TCP option (68 B).
    size = np.where(rng.random(count) < 0.2, 68, 60).astype(np.int64)
    batch.add(
        src=np.uint64(src_site << 16),
        src_lo=np.uint64(1),
        dst=dst,
        dst_lo=dst_lo,
        proto=np.uint8(PROTO_UDP if udp else PROTO_TCP),
        dport=rng.choice(_SCAN_PORTS, size=count).astype(np.uint16),
        packets=packets,
        size=size,
        sender_asn=64500 + scanner_index,
        dst_asn=np.full(count, dst_asn, dtype=np.int32),
    )


def ipv6_day_view(world: Ipv6World, day: int) -> VantageDayView:
    """Generate the single v6 vantage's flows for ``day``.

    The view is what the engine folds: scanner probes toward every
    *announced* org's sites (BGP-reactive — late orgs see nothing
    before their announce day), the documentation-space spray under the
    route leak, production payload between loud sites, and the
    backscatter flood on one dark site.
    """
    config = world.config
    rng = config.child_rng(f"ipv6-traffic-day-{day}")
    batch = _FlowBatch()
    announced = [
        org
        for org in world.orgs
        if org.announce_day is not None and org.announce_day <= day
    ]
    asn_of = world.asn_of_site()

    # Scanners: announced org space plus the leaked documentation /48.
    for scanner_index in range(config.num_scanners):
        for org in announced:
            for site in org.sites:
                _scan_batch(
                    batch,
                    world,
                    scanner_index,
                    site,
                    org.asn,
                    config.scans_per_site_day,
                    rng,
                    udp=site == world.udp_only_site,
                )
        _scan_batch(
            batch,
            world,
            scanner_index,
            LEAKED_SITE,
            LEAK_ASN,
            max(4, config.scans_per_site_day // 2),
            rng,
        )

    # Stale-hitlist replay: scanner 0 still probes never-announced orgs
    # off an old target list — observed traffic toward unrouted space.
    for org in world.orgs:
        if org.announce_day is not None:
            continue
        for site in org.sites:
            _scan_batch(
                batch,
                world,
                0,
                site,
                org.asn,
                max(2, config.scans_per_site_day // 4),
                rng,
            )

    # Backscatter flood: one dark site far over the volume threshold.
    if world.flood_site is not None:
        batch.add(
            src=np.uint64(world.scanner_sites[0] << 16),
            src_lo=np.uint64(7),
            dst=_site_keys(world.flood_site, 1, 1, rng),
            dst_lo=np.ones(1, dtype=np.uint64),
            proto=np.uint8(PROTO_TCP),
            dport=np.full(1, 80, dtype=np.uint16),
            packets=np.full(1, config.flood_packets, dtype=np.int64),
            size=np.full(1, 60, dtype=np.int64),
            sender_asn=64500,
            dst_asn=np.full(1, asn_of[world.flood_site], dtype=np.int32),
        )

    # Production payload: loud sites talk to loud sites (quiet and dark
    # sites receive nothing but scans).
    loud = [site for org in announced for site in org.loud_sites]
    for site in loud:
        count = config.production_flows_per_site_day
        dst_sites = rng.choice(loud, size=count)
        dst = (dst_sites.astype(np.uint64) << np.uint64(16)) + rng.integers(
            0, config.subnets_per_site, size=count, dtype=np.uint64
        )
        packets = rng.integers(2, 20, size=count, dtype=np.int64)
        batch.add(
            src=_site_keys(site, count, config.subnets_per_site, rng),
            src_lo=rng.integers(1, 1 << 20, size=count, dtype=np.uint64),
            dst=dst,
            dst_lo=rng.integers(1, 1 << 20, size=count, dtype=np.uint64),
            proto=np.where(
                rng.random(count) < 0.7, PROTO_TCP, PROTO_UDP
            ).astype(np.uint8),
            dport=rng.choice(_PRODUCTION_PORTS, size=count).astype(np.uint16),
            packets=packets,
            size=rng.integers(180, 1200, size=count, dtype=np.int64),
            sender_asn=asn_of[site],
            dst_asn=np.array(
                [asn_of[int(s)] for s in dst_sites], dtype=np.int32
            ),
        )

    flows = batch.table()
    sampling_factor = 1.0
    if config.sampling_probability < 1.0:
        flows = flows.thin(
            config.sampling_probability,
            config.child_rng(f"ipv6-sampling-day-{day}"),
        )
        sampling_factor = 1.0 / config.sampling_probability
    return VantageDayView(
        vantage="V6IX",
        day=day,
        flows=flows,
        sampling_factor=sampling_factor,
    )


def ipv6_views(world: Ipv6World, num_days: int | None = None) -> list[VantageDayView]:
    """Vantage-day views for the first ``num_days`` days (default: all)."""
    days = world.config.num_days if num_days is None else num_days
    days = min(days, world.config.num_days)
    return [ipv6_day_view(world, day) for day in range(days)]
