"""Ground-truth per-/24 state of the synthetic Internet.

The real Internet's usage is unknown — the paper can only lower-bound
its false positives.  The simulator, in contrast, knows exactly which
/24s are used, which is what makes the evaluation benches (confusion
matrices, Figure 10b's false-positive curve) possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.bgp.asinfo import ASType
from repro.geo.countries import COUNTRIES, Continent


class BlockState(IntEnum):
    """True usage of a /24 block."""

    DARK = 0          #: advertised, completely unused
    ACTIVE = 1        #: hosts users/servers, normal volumes
    MIXED = 2         #: some addresses used, some dark
    CDN_SINK = 3      #: active content network with ACK-only inbound at IXPs
    TELESCOPE = 4     #: dedicated dark space of an operational telescope
    LOW_ACTIVE = 5    #: active but below the labelling volume cut


#: States that count as "truly unused" for false-positive accounting.
DARK_STATES = (BlockState.DARK, BlockState.TELESCOPE)
#: States with at least one active address (liveness datasets may list them).
ACTIVE_STATES = (
    BlockState.ACTIVE,
    BlockState.MIXED,
    BlockState.CDN_SINK,
    BlockState.LOW_ACTIVE,
)

_COUNTRY_CODES = np.array([c.code for c in COUNTRIES])
_COUNTRY_CONTINENTS = np.array([c.continent.value for c in COUNTRIES])
_CODE_TO_INDEX = {c.code: i for i, c in enumerate(COUNTRIES)}
_AS_TYPES = tuple(ASType)
_TYPE_TO_INDEX = {t: i for i, t in enumerate(_AS_TYPES)}


@dataclass
class BlockIndex:
    """Sorted registry of all announced /24 blocks with their attributes.

    Everything is columnar and aligned with ``blocks`` (sorted unique
    block ids): origin ASN, country index (into
    :data:`repro.geo.countries.COUNTRIES`), AS-type index and ground
    truth :class:`BlockState`.
    """

    blocks: np.ndarray
    asn: np.ndarray
    country_index: np.ndarray
    type_index: np.ndarray
    state: np.ndarray

    def __post_init__(self) -> None:
        self.blocks = np.asarray(self.blocks, dtype=np.int64)
        if not np.all(np.diff(self.blocks) > 0):
            raise ValueError("blocks must be sorted and unique")
        for name in ("asn", "country_index", "type_index", "state"):
            column = np.asarray(getattr(self, name))
            if len(column) != len(self.blocks):
                raise ValueError(f"column {name} misaligned")
            setattr(self, name, column.astype(np.int32))

    def __len__(self) -> int:
        return len(self.blocks)

    # -- lookups -------------------------------------------------------

    def positions(self, blocks: np.ndarray) -> np.ndarray:
        """Index into the columns per queried block; -1 when unknown."""
        queried = np.asarray(blocks, dtype=np.int64)
        index = np.searchsorted(self.blocks, queried)
        index = np.clip(index, 0, max(len(self.blocks) - 1, 0))
        result = np.full(len(queried), -1, dtype=np.int64)
        if len(self.blocks):
            hit = self.blocks[index] == queried
            result[hit] = index[hit]
        return result

    def known_mask(self, blocks: np.ndarray) -> np.ndarray:
        """True where the queried block is announced (known to the index)."""
        return self.positions(blocks) >= 0

    def asn_of(self, blocks: np.ndarray) -> np.ndarray:
        """Origin ASN per block; -1 for unknown blocks."""
        pos = self.positions(blocks)
        result = np.full(len(pos), -1, dtype=np.int32)
        hit = pos >= 0
        result[hit] = self.asn[pos[hit]]
        return result

    def state_of(self, blocks: np.ndarray) -> np.ndarray:
        """Ground-truth state per block; -1 for unknown blocks."""
        pos = self.positions(blocks)
        result = np.full(len(pos), -1, dtype=np.int32)
        hit = pos >= 0
        result[hit] = self.state[pos[hit]]
        return result

    def country_codes_of(self, blocks: np.ndarray) -> np.ndarray:
        """Two-letter country code per block ('??' when unknown)."""
        pos = self.positions(blocks)
        result = np.full(len(pos), "??", dtype="<U2")
        hit = pos >= 0
        result[hit] = _COUNTRY_CODES[self.country_index[pos[hit]]]
        return result

    def continents_of(self, blocks: np.ndarray) -> np.ndarray:
        """Continent code (e.g. 'NA') per block ('??' when unknown)."""
        pos = self.positions(blocks)
        result = np.full(len(pos), "??", dtype="<U3")
        hit = pos >= 0
        result[hit] = _COUNTRY_CONTINENTS[self.country_index[pos[hit]]]
        return result

    def as_types_of(self, blocks: np.ndarray) -> list[ASType | None]:
        """Ground-truth business type per block."""
        pos = self.positions(blocks)
        return [None if p < 0 else _AS_TYPES[self.type_index[p]] for p in pos]

    # -- selections ----------------------------------------------------

    def blocks_in_state(self, *states: BlockState) -> np.ndarray:
        """All blocks whose ground truth is one of ``states``."""
        mask = np.isin(self.state, [int(s) for s in states])
        return self.blocks[mask]

    def truly_dark_blocks(self) -> np.ndarray:
        """Blocks with no active address at all."""
        return self.blocks_in_state(*DARK_STATES)

    def truly_active_blocks(self) -> np.ndarray:
        """Blocks with at least one active address."""
        return self.blocks_in_state(*ACTIVE_STATES)

    def blocks_of_continent(self, continent: Continent) -> np.ndarray:
        """All blocks geolocated (ground truth) in ``continent``."""
        mask = _COUNTRY_CONTINENTS[self.country_index] == continent.value
        return self.blocks[mask]

    def blocks_of_type(self, as_type: ASType) -> np.ndarray:
        """All blocks originated by ASes of ``as_type``."""
        mask = self.type_index == _TYPE_TO_INDEX[as_type]
        return self.blocks[mask]

    def blocks_of_country(self, code: str) -> np.ndarray:
        """All blocks of one country."""
        mask = self.country_index == _CODE_TO_INDEX[code]
        return self.blocks[mask]


def country_index_of(code: str) -> int:
    """Index of a country code in the global registry."""
    return _CODE_TO_INDEX[code]


def type_index_of(as_type: ASType) -> int:
    """Index of an AS type in the canonical tuple."""
    return _TYPE_TO_INDEX[as_type]
