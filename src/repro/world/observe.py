"""Observation of a world: turning ground-truth traffic into vantage views.

The :class:`Observatory` is the measurement campaign: for each day it
generates the world's ground-truth flows, lets each IXP claim and
sample its share, gives the telescopes and the ISP their unsampled
captures, and caches the resulting views (the ground-truth table itself
is discarded — exactly as unstored line-rate traffic is in reality).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vantage.sampling import VantageDayView
from repro.world.builder import World


@dataclass
class DayObservation:
    """Everything every vantage point recorded on one day."""

    day: int
    ixp_views: dict[str, VantageDayView]
    telescope_views: dict[str, VantageDayView]
    isp_view: VantageDayView

    def view(self, vantage: str) -> VantageDayView:
        """Look up a view by vantage code (IXP, telescope, or ISP)."""
        if vantage in self.ixp_views:
            return self.ixp_views[vantage]
        if vantage in self.telescope_views:
            return self.telescope_views[vantage]
        if vantage == self.isp_view.vantage:
            return self.isp_view
        raise KeyError(f"unknown vantage {vantage!r} on day {self.day}")


class Observatory:
    """Per-day observation cache over a world."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._days: dict[int, DayObservation] = {}

    def day(self, day: int) -> DayObservation:
        """Observe (or recall) one day."""
        cached = self._days.get(day)
        if cached is not None:
            return cached
        observation = self._observe(day)
        self._days[day] = observation
        return observation

    def days(self, num_days: int | None = None) -> list[DayObservation]:
        """Observe days ``0 .. num_days-1`` (default: the config's week)."""
        if num_days is None:
            num_days = self.world.config.num_days
        return [self.day(d) for d in range(num_days)]

    def ixp_views(self, vantage: str, num_days: int | None = None) -> list[VantageDayView]:
        """One IXP's views across the campaign days."""
        return [obs.ixp_views[vantage] for obs in self.days(num_days)]

    def all_ixp_views(self, num_days: int | None = None) -> list[VantageDayView]:
        """Every IXP's view for every campaign day (the "All" dataset)."""
        views = []
        for obs in self.days(num_days):
            views.extend(obs.ixp_views.values())
        return views

    def _observe(self, day: int) -> DayObservation:
        world = self.world
        traffic_rng = world.config.child_rng(f"traffic-day-{day}")
        ground = world.mix.generate_day(day, traffic_rng)
        ground = world.annotate_dst_asn(ground)

        vantage_rng = world.config.child_rng(f"vantage-day-{day}")
        ixp_views = world.fabric.views_for_day(ground, day, vantage_rng)
        telescope_views = {
            code: telescope.capture(ground, day)
            for code, telescope in world.telescopes.items()
        }
        isp_view = world.isp.capture(ground, day)
        return DayObservation(
            day=day,
            ixp_views=ixp_views,
            telescope_views=telescope_views,
            isp_view=isp_view,
        )
