"""Observation of a world: turning ground-truth traffic into vantage views.

The :class:`Observatory` is the measurement campaign: for each day it
generates the world's ground-truth flows, lets each IXP claim and
sample its share, gives the telescopes and the ISP their unsampled
captures, and caches the resulting views (the ground-truth table itself
is discarded — exactly as unstored line-rate traffic is in reality).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.vantage.sampling import VantageDayView
from repro.world.builder import World

if TYPE_CHECKING:
    from repro.core.engine import RunContext
    from repro.world.capture_cache import CaptureCache


@dataclass
class DayObservation:
    """Everything every vantage point recorded on one day.

    Views are in-memory :class:`VantageDayView` objects on a freshly
    generated day, or archive-backed
    :class:`~repro.vantage.archive.ArchiveDayView` objects when every
    vantage came out of a :class:`~repro.world.capture_cache.CaptureCache`
    — the two share one duck interface, so consumers never care.
    """

    day: int
    ixp_views: dict[str, VantageDayView]
    telescope_views: dict[str, VantageDayView]
    isp_view: VantageDayView

    def view(self, vantage: str) -> VantageDayView:
        """Look up a view by vantage code (IXP, telescope, or ISP)."""
        if vantage in self.ixp_views:
            return self.ixp_views[vantage]
        if vantage in self.telescope_views:
            return self.telescope_views[vantage]
        if vantage == self.isp_view.vantage:
            return self.isp_view
        raise KeyError(f"unknown vantage {vantage!r} on day {self.day}")


class Observatory:
    """Per-day observation cache over a world.

    With a :class:`~repro.world.capture_cache.CaptureCache` attached,
    each generated vantage-day capture is persisted content-addressed
    by (world config, day, vantage); when *every* vantage of a day is
    already cached, the day is served straight from the archives and
    the expensive ``generate_day`` simulation is skipped entirely.
    Generation is seeded, so a cache hit is bit-identical to
    regenerating.
    """

    def __init__(
        self,
        world: World,
        capture_cache: "CaptureCache | None" = None,
        context: "RunContext | None" = None,
    ) -> None:
        self.world = world
        self.capture_cache = capture_cache
        #: Optional trace spine: ``generate`` and ``cache`` events per day.
        self.context = context
        self._days: dict[int, DayObservation] = {}

    def day(self, day: int) -> DayObservation:
        """Observe (or recall) one day."""
        cached = self._days.get(day)
        if cached is not None:
            return cached
        observation = self._observe(day)
        self._days[day] = observation
        return observation

    def days(self, num_days: int | None = None) -> list[DayObservation]:
        """Observe days ``0 .. num_days-1`` (default: the config's week)."""
        if num_days is None:
            num_days = self.world.config.num_days
        return [self.day(d) for d in range(num_days)]

    def ixp_views(self, vantage: str, num_days: int | None = None) -> list[VantageDayView]:
        """One IXP's views across the campaign days."""
        return [obs.ixp_views[vantage] for obs in self.days(num_days)]

    def all_ixp_views(self, num_days: int | None = None) -> list[VantageDayView]:
        """Every IXP's view for every campaign day (the "All" dataset)."""
        views = []
        for obs in self.days(num_days):
            views.extend(obs.ixp_views.values())
        return views

    def _observe(self, day: int) -> DayObservation:
        if self.capture_cache is not None:
            started = time.perf_counter()
            recalled = self._recall_cached(day)
            if self.context is not None:
                self.context.emit(
                    "cache",
                    f"d{day}",
                    time.perf_counter() - started,
                    cache_hits=1 if recalled is not None else 0,
                    cache_misses=0 if recalled is not None else 1,
                    bytes=self._cached_bytes(recalled),
                )
            if recalled is not None:
                return recalled

        started = time.perf_counter()
        world = self.world
        traffic_rng = world.config.child_rng(f"traffic-day-{day}")
        ground = world.mix.generate_day(day, traffic_rng)
        ground = world.annotate_dst_asn(ground)

        vantage_rng = world.config.child_rng(f"vantage-day-{day}")
        ixp_views = world.fabric.views_for_day(ground, day, vantage_rng)
        telescope_views = {
            code: telescope.capture(ground, day)
            for code, telescope in world.telescopes.items()
        }
        isp_view = world.isp.capture(ground, day)
        observation = DayObservation(
            day=day,
            ixp_views=ixp_views,
            telescope_views=telescope_views,
            isp_view=isp_view,
        )
        if self.context is not None:
            self.context.emit(
                "generate",
                f"d{day}",
                time.perf_counter() - started,
                rows_in=len(ground),
                rows_out=sum(
                    view.num_rows
                    for view in (
                        *ixp_views.values(),
                        *telescope_views.values(),
                        isp_view,
                    )
                ),
            )
        if self.capture_cache is not None:
            self._store_cached(day, observation)
        return observation

    @staticmethod
    def _cached_bytes(observation: DayObservation | None) -> int | None:
        """On-disk size of a recalled day's archives (None on a miss)."""
        if observation is None:
            return None
        total = 0
        for views in (
            observation.ixp_views.values(),
            observation.telescope_views.values(),
            (observation.isp_view,),
        ):
            for view in views:
                path = getattr(view, "path", None)
                if path is not None:
                    total += path.stat().st_size
        return total

    def _vantage_codes(self) -> tuple[list[str], list[str], str]:
        """Every vantage a day observation must cover."""
        world = self.world
        return (
            world.fabric.codes(),
            sorted(world.telescopes),
            world.isp.code,
        )

    def _recall_cached(self, day: int) -> DayObservation | None:
        """The day served entirely from cached archives, else ``None``.

        All-or-nothing on purpose: a partial hit still pays for
        ``generate_day`` (the dominant cost), so the simpler contract —
        skip generation only when *every* vantage is cached — costs
        nothing and keeps the hit path trivially correct.
        """
        cache = self.capture_cache
        config = self.world.config
        ixp_codes, telescope_codes, isp_code = self._vantage_codes()
        views: dict[str, VantageDayView] = {}
        for code in [*ixp_codes, *telescope_codes, isp_code]:
            view = cache.load(cache.key_for(config, day, code))
            if view is None:
                return None
            views[code] = view
        return DayObservation(
            day=day,
            ixp_views={code: views[code] for code in ixp_codes},
            telescope_views={code: views[code] for code in telescope_codes},
            isp_view=views[isp_code],
        )

    def _store_cached(self, day: int, observation: DayObservation) -> None:
        cache = self.capture_cache
        config = self.world.config
        all_views = [
            *observation.ixp_views.values(),
            *observation.telescope_views.values(),
            observation.isp_view,
        ]
        for view in all_views:
            key = cache.key_for(config, day, view.vantage)
            if not cache.has(key):
                cache.store(key, view)
