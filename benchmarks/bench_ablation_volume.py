"""Ablation — the asymmetric-routing volume filter (pipeline step 6).

DESIGN.md design choice: without the volume threshold, CDN blocks that
receive torrents of bare ACKs (asymmetric return path) are
misclassified as meta-telescope prefixes; with the paper's threshold
they are filtered while ordinary dark space is untouched.
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.reporting.tables import format_table
from repro.world.ground_truth import BlockState


def test_ablation_volume_filter(study, benchmark):
    world = study.world
    views = study.views("All", days=1)
    routing = study.telescope.routing_for_days([0])
    cdn_blocks = world.index.blocks_in_state(BlockState.CDN_SINK)
    thresholds = (
        world.config.volume_threshold_pkts_day / 30,
        world.config.volume_threshold_pkts_day,
        1e12,  # filter disabled
    )

    def sweep():
        rows = []
        for threshold in thresholds:
            config = PipelineConfig(
                avg_size_threshold=world.config.avg_size_threshold,
                volume_threshold_pkts_day=threshold,
            )
            result = run_pipeline(views, routing, config)
            cdn_dark = int(np.isin(cdn_blocks, result.dark_blocks).sum())
            rows.append(
                (
                    threshold,
                    result.num_dark(),
                    cdn_dark,
                    len(result.volume_filtered_blocks),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_volume",
        format_table(
            ["Volume threshold", "#Dark", "CDN blocks misclassified", "#Volume-filtered"],
            rows,
            title="Ablation — volume threshold (step 6)",
        ),
    )
    tight, paper, disabled = rows
    # Disabled: CDN ACK sinks leak into the meta-telescope.
    assert disabled[2] > 0
    assert disabled[3] == 0
    # The paper's threshold removes essentially all of them without
    # large collateral damage.
    assert paper[2] <= max(1, disabled[2] // 10)
    assert paper[1] > 0.9 * disabled[1] - disabled[2]
    # Far too tight: large parts of real dark space are lost.
    assert tight[1] < 0.7 * paper[1]
