"""Figures 4 & 13-15 — world maps of meta-telescope prefixes per country.

Paper shape: the US holds by far the most meta-telescope /24s, China is
second; coverage spans almost every registry country, including small
ones no operational telescope covers; poorly-covered regions (central
Africa, North Korea) show only a handful of blocks.
"""

from __future__ import annotations

from _common import emit
from repro.analysis.geo_dist import country_counts
from repro.reporting.worldmap import render_country_bars


def test_fig4_world_distribution(study, benchmark):
    def collect():
        per_vantage = {}
        for vantage in ("CE1", "NA1", "All"):
            result = study.infer(vantage, days=1)
            per_vantage[vantage] = country_counts(
                result.prefixes, study.world.datasets.geodb
            )
        return per_vantage

    per_vantage = benchmark.pedantic(collect, rounds=1, iterations=1)
    sections = []
    for vantage, counts in per_vantage.items():
        sections.append(
            f"--- {vantage} (Figure {'4' if vantage == 'All' else '13/14'}) ---\n"
            + render_country_bars(counts, top=20)
        )
    emit("fig4_worldmap", "\n\n".join(sections))

    all_counts = per_vantage["All"]
    ranked = sorted(all_counts, key=lambda c: -all_counts[c])
    # US first, China in the top three.
    assert ranked[0] == "US"
    assert "CN" in ranked[:3]
    # Broad coverage including small countries.
    assert len(all_counts) > 30
    # Poorly covered regions stay small.
    for code in ("KP", "TD"):
        assert all_counts.get(code, 0) < all_counts["US"] / 50
    # Every vantage point sees the US dominate (legacy space).
    for vantage in ("CE1", "NA1"):
        counts = per_vantage[vantage]
        assert sorted(counts, key=lambda c: -counts[c])[0] == "US"
