"""Table 7 — meta-telescope /24s by continent and network type.

Paper shape: North America holds the largest share (legacy space),
Asia second; ISPs host the most prefixes overall, education space is
prominent in North America (legacy university allocations), data
centers hold the least; every continent x type cell is populated.
"""

from __future__ import annotations

from _common import emit
from repro.analysis.nettypes import TABLE7_CONTINENTS, TABLE7_TYPES, type_continent_matrix
from repro.reporting.tables import format_table


def test_table7_type_continent(study, benchmark):
    def collect():
        blocks = study.union_final_blocks()
        return type_continent_matrix(
            blocks,
            study.world.datasets.geodb,
            study.world.datasets.pfx2as,
            study.world.datasets.ipinfo,
        )

    matrix = benchmark.pedantic(collect, rounds=1, iterations=1)
    header = ["Region", "Total", *(t.value for t in TABLE7_TYPES)]
    rows = [
        [region, matrix[region]["Total"], *(matrix[region][t.value] for t in TABLE7_TYPES)]
        for region in ("All", *TABLE7_CONTINENTS)
    ]
    emit(
        "table7_nettypes",
        format_table(
            header, rows,
            title="Table 7 — meta-telescope /24s by continent and type (union)",
        ),
    )
    all_row = matrix["All"]
    # ISPs host the most meta-telescope space; data centers the least.
    assert all_row["ISP"] == max(all_row[t.value] for t in TABLE7_TYPES)
    assert all_row["Data Center"] == min(all_row[t.value] for t in TABLE7_TYPES)
    # North America leads, Asia follows.
    continent_totals = {c: matrix[c]["Total"] for c in TABLE7_CONTINENTS}
    ranked = sorted(continent_totals, key=lambda c: -continent_totals[c])
    assert ranked[0] == "NA"
    assert "AS" in ranked[:2]
    # Education is especially prominent inside North America.
    na = matrix["NA"]
    assert na["Education"] > all_row["Education"] * 0.5
