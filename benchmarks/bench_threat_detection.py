"""Extension — validating the threat analyses against ground truth.

The meta-telescope's purpose is threat intelligence; the simulator's
ground truth lets us verify that the scanner and backscatter detectors
recover the actual actors: the Mirai-family campaign dominates the
inferred scanner population, Satori sources are found, and the
inferred DDoS victims really are the spoofed-flood victims of the
traffic model.
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.net.ipv4 import format_ip
from repro.analysis.backscatter_analysis import detect_victims
from repro.analysis.scanners_analysis import campaign_summary, detect_scanners
from repro.reporting.tables import format_table
from repro.traffic.backscatter import BackscatterActor
from repro.traffic.scanners import ScanCampaign


def test_threat_detection(study, benchmark):
    world = study.world

    def run():
        result = study.infer("All", days=1)
        views = study.views("All", days=1)
        captured = study.telescope.captured_traffic(views, result)
        scanners = detect_scanners(captured, min_footprint_blocks=5)
        victims = detect_victims(captured, min_spread_blocks=3, min_packets=3)
        return captured, scanners, victims

    captured, scanners, victims = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = campaign_summary(scanners)
    rows = [(family, count) for family, count in summary.items()]
    victim_rows = [
        (format_ip(victim.victim_ip), victim.spread_blocks, victim.packets)
        for victim in victims.victims[:10]
    ]
    emit(
        "threat_detection",
        format_table(["Campaign", "#Scanners"], rows,
                     title="Inferred scanner campaigns (All IXPs, day 0)")
        + f"\n\nInferred DDoS victims: {len(victims.victims)} "
        f"(backscatter = {victims.backscatter_share():.2%} of captured pkts)\n"
        + format_table(["victim ip", "#/24 spread", "sampled pkts"], victim_rows),
    )

    # Ground truth: actual scanner source IPs from the campaign actors.
    true_scanner_ips = set()
    true_victim_ips = set()
    for actor in world.mix.actors:
        if isinstance(actor, ScanCampaign):
            true_scanner_ips.update(source.ip for source in actor.sources)
        if isinstance(actor, BackscatterActor):
            true_victim_ips.update(victim.ip for victim in actor.victims)

    inferred_scanner_ips = {report.source_ip for report in scanners}
    precision = (
        len(inferred_scanner_ips & true_scanner_ips) / len(inferred_scanner_ips)
        if inferred_scanner_ips
        else 0.0
    )
    # Nearly every inferred scanner is a real campaign source.
    assert precision > 0.9
    assert len(inferred_scanner_ips) > 100
    # The Mirai family dominates the campaign summary.
    assert max(summary, key=summary.get) == "mirai-family"
    assert "satori" in summary
    # Inferred victims are real backscatter emitters.
    inferred_victim_ips = {v.victim_ip for v in victims.victims}
    if inferred_victim_ips:
        victim_precision = len(
            inferred_victim_ips & true_victim_ips
        ) / len(inferred_victim_ips)
        assert victim_precision > 0.8
