"""Robustness — serving-list quality under injected feed faults.

The paper's Section-9 service vision means operating on feeds the
operator does not control.  This bench runs the online meta-telescope
through every standard fault class (site outage, truncated day,
duplicated records, corrupted fields, misreported sampling, stale RIB)
injected on one campaign day, and measures what the degraded-mode
``carry`` policy preserves: the serving list survives days on which the
strict operator would simply crash, and its precision against ground
truth stays at the clean baseline.

Everything is seeded: the same plan produces byte-identical degraded
feeds on every run.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import emit
from repro.core.evaluation import confusion_against_truth
from repro.core.metatelescope import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.faults import STANDARD_FAULTS, FaultPlan, standard_injector
from repro.reporting.tables import format_table
from repro.world.scenarios import small_observatory, small_world

SEED = 7
FAULT_DAY = 2
NUM_DAYS = 5
WINDOW = 3


def _telescope(world) -> MetaTelescope:
    return MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


def _plan(fault: str) -> FaultPlan:
    plan = FaultPlan(seed=SEED)
    if fault != "none":
        plan.add(standard_injector(fault, days=frozenset({FAULT_DAY})))
    return plan


def _run(world, observatory, fault: str, policy: str):
    plan = _plan(fault)
    telescope = _telescope(world)
    telescope.replace_collector(plan.wrap_collector(telescope.collector))
    online = OnlineMetaTelescope(
        telescope=telescope,
        window_days=WINDOW,
        min_stable_days=2,
        policy=policy,
    )
    days = min(NUM_DAYS, world.config.num_days)
    per_day = []
    for day in range(days):
        views = list(observatory.day(day).ixp_views.values())
        update = online.update(day, list(plan.apply(day, views).views))
        confusion = confusion_against_truth(
            online.current_prefixes(), world.index
        )
        per_day.append((update, confusion))
    return per_day


def test_bench_robustness_faults(benchmark):
    world = small_world(SEED)
    observatory = small_observatory(SEED)

    def collect():
        return {
            fault: _run(world, observatory, fault, policy="carry")
            for fault in ("none", *STANDARD_FAULTS)
        }

    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for fault, per_day in results.items():
        update, confusion = per_day[FAULT_DAY]
        final_update, final_confusion = per_day[-1]
        rows.append(
            (
                fault,
                update.action,
                f"{update.quality.score:.2f}",
                update.serving_size,
                f"{1 - confusion.false_positive_rate_of_inferred():.1%}",
                f"{confusion.recall():.1%}",
                final_update.serving_size,
                f"{1 - final_confusion.false_positive_rate_of_inferred():.1%}",
            )
        )
    emit(
        "robustness_faults",
        format_table(
            ["fault", "day-2 action", "quality", "serving", "precision",
             "recall", "final serving", "final precision"],
            rows,
            title="Degraded-mode operation under injected faults "
            f"(carry policy, fault on day {FAULT_DAY})",
        ),
    )

    clean = results["none"]
    clean_precision = 1 - clean[FAULT_DAY][1].false_positive_rate_of_inferred()

    # The plan is deterministic: replaying an injector yields the same
    # degraded flows byte for byte.
    views = list(observatory.day(FAULT_DAY).ixp_views.values())
    for fault in ("truncate", "duplicate", "corrupt"):
        once = _plan(fault).apply(FAULT_DAY, views)
        again = _plan(fault).apply(FAULT_DAY, views)
        assert len(once.views) == len(again.views)
        for a, b in zip(once.views, again.views):
            assert np.array_equal(a.flows.dst_ip, b.flows.dst_ip)
            assert np.array_equal(a.flows.packets, b.flows.packets)

    # A full outage crashes the strict operator ...
    with pytest.raises(ValueError):
        _run(world, observatory, "outage", policy="strict")
    # ... while degraded mode keeps serving through it.
    outage_update, outage_confusion = results["outage"][FAULT_DAY]
    assert outage_update.action == "carried"
    assert outage_update.serving_size > 0
    assert outage_update.staleness == 1

    for fault in STANDARD_FAULTS:
        update, confusion = results[fault][FAULT_DAY]
        final_update, _ = results[fault][-1]
        # The serving list survives every fault class ...
        assert update.serving_size > 0, fault
        # ... without sacrificing precision on the faulted day ...
        assert (
            1 - confusion.false_positive_rate_of_inferred()
            >= clean_precision - 0.05
        ), fault
        # ... and the operation recovers once the feed heals.
        assert final_update.action == "inferred", fault
        assert final_update.staleness == 0, fault

    # View-degrading faults are detected by the quality score; the
    # stale RIB degrades routing, not the feed, so it scores clean.
    for fault in ("outage", "truncate", "duplicate", "corrupt", "missample"):
        assert results[fault][FAULT_DAY][0].quality.score < 0.5, fault
    assert results["stale-rib"][FAULT_DAY][0].quality.score >= 0.5
