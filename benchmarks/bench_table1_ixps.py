"""Table 1 — IXP basic statistics (members, traffic, sampled flows).

Paper shape: CE1 is by far the largest site by sampled flows, NA1
second; the small sites (NA3, SE6) are three orders of magnitude
smaller.
"""

from __future__ import annotations

from _common import emit
from repro.reporting.tables import format_table


def test_table1_ixp_stats(study, benchmark):
    def collect():
        rows = []
        for ixp in study.world.fabric.ixps:
            weekly_flows = 0
            weekly_packets = 0
            for day in range(study.world.config.num_days):
                view = study.observatory.day(day).ixp_views[ixp.code]
                weekly_flows += len(view.flows)
                weekly_packets += view.flows.total_packets()
            rows.append(
                (
                    ixp.code,
                    len(ixp.member_asns),
                    ixp.region,
                    weekly_flows,
                    weekly_packets,
                )
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(
        "table1_ixps",
        format_table(
            ["IXP", "#Members", "Region", "Sampled flows (wk)", "Sampled pkts (wk)"],
            rows,
            title="Table 1 — IXP basic statistics (simulation scale)",
        ),
    )
    by_code = {row[0]: row for row in rows}
    # CE1 and NA1 are the two biggest sites by membership; the small
    # sites are far smaller.
    top_two = sorted(rows, key=lambda r: -r[1])[:2]
    assert {row[0] for row in top_two} == {"CE1", "NA1"}
    assert by_code["NA3"][3] < by_code["NA1"][3]
    assert by_code["SE6"][3] < by_code["SE1"][3]
