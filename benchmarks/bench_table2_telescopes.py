"""Table 2 — operational telescope basic statistics.

Paper shape: every telescope's per-/24 daily packet count is of the
same order (~2 M real, ~intensity-scaled here); TCP dominates (79-94 %),
TEU2 is the most UDP-heavy and busiest per /24; the average TCP packet
size sits just above 40 bytes everywhere; TEU1's totals are depressed by
its blocked ports (23/445).
"""

from __future__ import annotations

from _common import emit
from repro.analysis.ports import tcp_share
from repro.reporting.tables import format_table
from repro.traffic.packets import PROTO_TCP


def test_table2_telescope_stats(study, benchmark):
    def collect():
        rows = []
        num_days = study.world.config.num_days
        for code, telescope in study.world.telescopes.items():
            daily = [
                telescope.daily_stats(
                    study.observatory.day(day).telescope_views[code]
                )
                for day in range(num_days)
            ]
            rows.append(
                (
                    code,
                    telescope.size(),
                    sum(s.packets_per_block for s in daily) / num_days,
                    100.0 * sum(s.tcp_share for s in daily) / num_days,
                    sum(s.avg_tcp_packet_size for s in daily) / num_days,
                )
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(
        "table2_telescopes",
        format_table(
            ["Code", "Size (#/24s)", "Daily /24 pkts", "TCP share %", "Avg TCP size (B)"],
            rows,
            title="Table 2 — operational telescopes (simulation scale)",
        ),
    )
    by_code = {row[0]: row for row in rows}
    # TCP dominates everywhere; TEU1 (blocked ports) is less busy per
    # /24 than TUS1; TEU2 is the most UDP-heavy and busiest per /24
    # (the April-24 reflection event); TCP size just above 40 B.
    assert all(row[3] > 60.0 for row in rows)
    assert by_code["TEU1"][2] < by_code["TUS1"][2]
    assert by_code["TEU2"][3] == min(row[3] for row in rows)
    assert by_code["TEU2"][2] == max(row[2] for row in rows)
    for row in rows:
        assert 40.0 < row[4] < 42.5
