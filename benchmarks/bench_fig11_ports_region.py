"""Figures 11 & 18 — top destination ports per world region.

Paper shape: port 23 dominates every region except OC/AF; 37215 and
52869 (Satori) are concentrated in Africa; 3306 in AF+NA; 6001 in OC;
7001 in NA; 8080 is the leading web port; SA/OC/INT carry only a small
share of the overall traffic.
"""

from __future__ import annotations

from _common import emit
from repro.analysis.ports import (
    bean_matrix,
    port_activity_by_group,
    top_ports_per_group,
)
from repro.reporting.beanplot import render_bean_rows


def test_fig11_ports_by_region(study, benchmark):
    def collect():
        result = study.infer("All", days=1)
        views = study.views("All", days=1)
        captured = study.telescope.captured_traffic(views, result)
        continents = study.world.index.continents_of(captured.dst_blocks())
        group_of_block = {
            int(block): str(continent)
            for block, continent in zip(captured.dst_blocks(), continents)
            if continent != "??"
        }
        activity = port_activity_by_group(captured, group_of_block)
        ports = top_ports_per_group(activity, per_group=10)[:16]
        return activity, ports

    activity, ports = benchmark.pedantic(collect, rounds=1, iterations=1)
    groups, matrix = bean_matrix(activity, ports, relative_to="group")
    overall_groups, overall_matrix = bean_matrix(
        activity, ports, relative_to="overall"
    )
    emit(
        "fig11_ports_region",
        "Figure 11 — top-16 ports per region (share within region)\n"
        + render_bean_rows(ports, groups, matrix)
        + "\n\nFigure 18 — same, relative to overall traffic\n"
        + render_bean_rows(ports, overall_groups, overall_matrix),
    )
    # Port 23 leads overall and in the big regions.
    assert ports[0] == 23
    for region in ("NA", "EU", "AS"):
        assert activity[region].rank_of(23) == 1
    # Satori's ports concentrate in Africa.
    assert activity["AF"].share_of(37215) > activity["EU"].share_of(37215)
    assert activity["AF"].share_of(52869) > activity["NA"].share_of(52869)
    # Regional specialties: 6001 in OC, 7001 in NA.
    assert activity["OC"].share_of(6001) > activity["EU"].share_of(6001)
    assert activity["NA"].share_of(7001) > activity["EU"].share_of(7001)
    # 8080 is the most popular web port overall.
    web_rank = {port: ports.index(port) for port in (8080, 80, 443) if port in ports}
    assert web_rank[8080] == min(web_rank.values())
