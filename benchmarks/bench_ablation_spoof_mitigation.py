"""Ablation — spoofing mitigations (paper Section 9).

Compares a week-long inference under the mitigation strategies the
paper discusses:

* no mitigation (the collapsing baseline of Figure 9);
* the unrouted-space tolerance (Section 7.2);
* ignoring source sightings from networks without BCP 38 (Spoofer
  list);
* customer-cone filtering of implausible sources;
* a ground-truth oracle that removes every spoofed flow (upper bound).
"""

from __future__ import annotations

from _common import emit
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.refine import (
    cone_filtered_view,
    drop_spoofed_ground_truth,
    non_bcp38_asns,
)
from repro.reporting.tables import format_table


def test_ablation_spoof_mitigation(study, benchmark):
    world = study.world
    week = world.config.num_days
    views = study.views("All", days=week)
    routing = study.telescope.routing_for_days(list(range(week)))
    base_config = PipelineConfig(
        avg_size_threshold=world.config.avg_size_threshold,
        volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
    )

    def sweep():
        rows = []
        rows.append(
            ("none", run_pipeline(views, routing, base_config).num_dark())
        )
        rows.append(
            (
                "unrouted tolerance",
                study.infer("All", days=week, refine=False).pipeline.num_dark(),
            )
        )
        spoofers = non_bcp38_asns(world.registry)
        bcp_config = PipelineConfig(
            avg_size_threshold=base_config.avg_size_threshold,
            volume_threshold_pkts_day=base_config.volume_threshold_pkts_day,
            ignore_sources_from_asns=spoofers,
        )
        rows.append(
            ("BCP38/Spoofer list", run_pipeline(views, routing, bcp_config).num_dark())
        )
        cone_views = [
            cone_filtered_view(view, world.topology, world.datasets.pfx2as)
            for view in views
        ]
        rows.append(
            ("customer cone", run_pipeline(cone_views, routing, base_config).num_dark())
        )
        oracle_views = [drop_spoofed_ground_truth(view) for view in views]
        rows.append(
            ("oracle (no spoofing)", run_pipeline(oracle_views, routing, base_config).num_dark())
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_spoof_mitigation",
        format_table(
            ["Mitigation", "#Dark (7-day window)"],
            rows,
            title="Ablation — spoofing mitigations (Section 9)",
        ),
    )
    by_name = dict(rows)
    # Every mitigation beats doing nothing.
    for name in ("unrouted tolerance", "BCP38/Spoofer list", "customer cone"):
        assert by_name[name] > by_name["none"], name
    # The tolerance and the cone filter stay at or below the oracle;
    # the BCP38 list may overshoot it (it also forgives *legitimate*
    # sources inside spoof-capable networks — an over-forgiveness the
    # paper's Section 9 does not quantify but our ground truth exposes).
    assert by_name["unrouted tolerance"] <= by_name["oracle (no spoofing)"] * 1.05
    assert by_name["customer cone"] <= by_name["oracle (no spoofing)"] * 1.10
    recovered = max(
        by_name["BCP38/Spoofer list"], by_name["unrouted tolerance"],
        by_name["customer cone"],
    )
    assert recovered > 0.5 * by_name["oracle (no spoofing)"]
