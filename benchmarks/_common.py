"""Shared infrastructure for the table/figure benches.

A :class:`PaperStudy` wraps the benchmark-scale world and caches the
expensive intermediate products (weekly views, pooled inferences) so
the whole bench suite performs each heavy computation exactly once per
session.  Every bench prints the rows/series the paper reports and
writes them under ``benchmarks/output/`` for inspection.
"""

from __future__ import annotations

import pathlib

from repro.core.metatelescope import MetaTelescope, MetaTelescopeResult
from repro.core.pipeline import PipelineConfig
from repro.vantage.sampling import VantageDayView
from repro.world.observe import Observatory
from repro.world.scenarios import paper_observatory, paper_world

OUTPUT_DIR = pathlib.Path(__file__).resolve().parent / "output"


def emit(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under output/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


class PaperStudy:
    """Cached access to the benchmark world and its inferences."""

    def __init__(self, seed: int = 7) -> None:
        self.world = paper_world(seed)
        self.observatory: Observatory = paper_observatory(seed)
        config = self.world.config
        self.telescope = MetaTelescope(
            collector=self.world.collector,
            liveness=self.world.datasets.liveness,
            unrouted_baseline=self.world.unrouted_baseline_blocks,
            config=PipelineConfig(
                avg_size_threshold=config.avg_size_threshold,
                volume_threshold_pkts_day=config.volume_threshold_pkts_day,
            ),
        )
        self._inference_cache: dict[tuple, MetaTelescopeResult] = {}

    # -- view selection --------------------------------------------------

    def views(self, vantage: str = "All", days: int = 1) -> list[VantageDayView]:
        """Views for one IXP code or 'All', over the first ``days`` days."""
        if vantage == "All":
            return self.observatory.all_ixp_views(num_days=days)
        return self.observatory.ixp_views(vantage, num_days=days)

    def views_by_day(self, vantage: str = "All") -> dict[int, list[VantageDayView]]:
        """Per-day view lists over the whole campaign."""
        result: dict[int, list[VantageDayView]] = {}
        for day in range(self.world.config.num_days):
            observation = self.observatory.day(day)
            if vantage == "All":
                result[day] = list(observation.ixp_views.values())
            else:
                result[day] = [observation.ixp_views[vantage]]
        return result

    # -- cached inference --------------------------------------------------

    def infer(
        self,
        vantage: str = "All",
        days: int = 1,
        tolerance: bool = True,
        refine: bool = True,
    ) -> MetaTelescopeResult:
        """Cached full inference for a (vantage, window) combination."""
        key = (vantage, days, tolerance, refine)
        cached = self._inference_cache.get(key)
        if cached is None:
            cached = self.telescope.infer(
                self.views(vantage, days),
                use_spoofing_tolerance=tolerance,
                refine=refine,
            )
            self._inference_cache[key] = cached
        return cached

    def union_final_blocks(self):
        """The paper's "union data set": final prefixes over the week."""
        return self.infer("All", days=self.world.config.num_days).prefixes
