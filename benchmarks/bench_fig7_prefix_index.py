"""Figure 7 — ECDF of the prefix index per announced-prefix length.

Paper shape: a surprisingly large share of big announcements contains
meta-telescope space — several percent of the largest blocks have more
than 5 % dark /24s, and some /16s exceed 40 %.
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.analysis.prefix_index import prefix_index_distribution, share_exceeding
from repro.reporting.ecdf import Ecdf, render_ecdf_rows
from repro.reporting.tables import format_table


def test_fig7_prefix_index_ecdf(study, benchmark):
    def collect():
        blocks = study.union_final_blocks()
        routing = study.telescope.routing_for_days(
            list(range(study.world.config.num_days))
        )
        return prefix_index_distribution(blocks, routing)

    per_length = benchmark.pedantic(collect, rounds=1, iterations=1)
    populated = {
        length: entries for length, entries in per_length.items() if entries
    }
    ecdfs = {
        f"/{length}": Ecdf(np.array([e.index for e in entries]))
        for length, entries in sorted(populated.items())
    }
    grid = np.array([0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8])
    emit(
        "fig7_prefix_index",
        format_table(
            ["dark share <=", *ecdfs],
            render_ecdf_rows(ecdfs, grid),
            title="Figure 7 — ECDF of per-prefix meta-telescope share",
        ),
    )
    # Several prefix lengths are announced and analysable.
    assert len(populated) >= 4
    # A substantial share of large announcements holds >5 % dark space.
    large_lengths = [length for length in populated if length <= 12]
    assert large_lengths, "need large announcements"
    share_over_5pct = max(
        share_exceeding(populated[length], 0.05) for length in large_lengths
    )
    assert share_over_5pct > 0.05
    # Some prefixes are mostly meta-telescope space.
    all_indices = [
        entry.index for entries in populated.values() for entry in entries
    ]
    assert max(all_indices) > 0.4
