"""Performance benchmarks of the core hot paths.

Unlike the table/figure benches (one-shot analyses), these time the
operations an operator runs continuously: per-/24 aggregation of a
day's flows, the pooled seven-step inference, packet-sampled thinning,
and tolerance calibration.  Regressions here directly translate to
slower daily re-inference.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.spoofing_tolerance import tolerances_for_views
from repro.vantage.sampling import VantageDayView, compute_block_aggregates


def test_perf_block_aggregation(study, benchmark):
    """Aggregate the biggest IXP's daily flows into /24 statistics."""
    flows = study.observatory.day(0).ixp_views["NA1"].flows

    def aggregate():
        return compute_block_aggregates(flows)

    agg = benchmark(aggregate)
    assert len(agg.blocks) > 1000


def test_perf_pipeline_single_day(study, benchmark):
    """The full pooled inference over all 14 IXPs, one day."""
    views = [
        VantageDayView(
            vantage=view.vantage,
            day=view.day,
            flows=view.flows,
            sampling_factor=view.sampling_factor,
        )
        for view in study.views("All", days=1)
    ]  # fresh copies: no cached aggregates, the realistic cold path
    routing = study.telescope.routing_for_days([0])
    config = PipelineConfig(
        volume_threshold_pkts_day=study.world.config.volume_threshold_pkts_day
    )

    def infer():
        for view in views:
            view._aggregates = None  # noqa: SLF001 - force recompute
        return run_pipeline(views, routing, config)

    result = benchmark.pedantic(infer, rounds=3, iterations=1)
    assert result.num_dark() > 0


def test_perf_thinning(study, benchmark):
    """Packet-sampled decimation of a large flow table."""
    flows = study.observatory.day(0).ixp_views["NA1"].flows
    rng = np.random.default_rng(0)

    def thin():
        return flows.thin(0.1, rng)

    thinned = benchmark(thin)
    assert 0 < thinned.total_packets() < flows.total_packets()


def test_perf_tolerance_calibration(study, benchmark):
    """Window-tolerance computation across all vantage points."""
    views = study.views("All", days=1)
    baseline = study.world.unrouted_baseline_blocks

    def calibrate():
        return tolerances_for_views(views, baseline)

    tolerances = benchmark(calibrate)
    assert len(tolerances) == 14
