"""Extension — prefix-set stability across days (paper Section 9 claim).

"The set of meta-telescope prefixes is quite stable for a couple of
days": adjacent daily sets should overlap substantially, with slow
decay over the week, and the paper's recommendation (trust prefixes
seen on several days) should retain the bulk of each day's set.
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.analysis.stability import stability_report
from repro.core.combine import stable_dark_blocks
from repro.reporting.tables import format_table


def test_prefix_set_stability(study, benchmark):
    week = study.world.config.num_days

    def collect():
        daily = {
            day: study.telescope.infer(
                study.views_by_day("All")[day],
                use_spoofing_tolerance=True,
                refine=False,
            ).pipeline.dark_blocks
            for day in range(week)
        }
        return daily, stability_report(daily)

    daily, report = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [
            day,
            len(daily[day]),
            f"{report.retention[i]:.3f}",
            f"{report.survival[i]:.3f}",
        ]
        for i, day in enumerate(report.days)
    ]
    stable3 = stable_dark_blocks(daily, min_days=3)
    emit(
        "stability",
        format_table(
            ["Day", "#Dark", "Retention vs prev", "Survival of day-0 set"],
            rows,
            title="Prefix-set stability across the week (All IXPs)",
        )
        + f"\nmean adjacent Jaccard: {report.adjacent_similarity():.3f}; "
        f"prefixes dark on >= 3 days: {len(stable3):,}",
    )
    # "Quite stable for a couple of days": adjacent sets overlap far
    # beyond chance (a random pair of 30 k-subsets of the 43 k-dark
    # universe would share ~70 % by chance of the smaller set but the
    # per-day sampling noise — the paper's own 2x variability — caps
    # retention well below 1).
    assert report.adjacent_similarity() > 0.35
    assert report.retention[1:].min() > 0.5
    # ... and decays slowly over the week.
    assert report.survival[-1] > 0.4
    assert (np.diff(report.survival[2:]) <= 0.15).all()
    # The stability recommendation keeps a usable set.
    assert len(stable3) > 0.4 * len(daily[0])
