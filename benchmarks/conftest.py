"""Session fixtures for the benchmark suite."""

from __future__ import annotations

import pytest

from _common import PaperStudy


@pytest.fixture(scope="session")
def study() -> PaperStudy:
    """The shared benchmark-scale study (built once per session)."""
    return PaperStudy()
