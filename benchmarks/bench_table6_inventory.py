"""Table 6 — inferred meta-telescope prefixes per vantage point.

Paper shape: CE1 and NA1 each infer far more than any other single
site; tiny sites (NA3, SE6) still contribute hundreds of prefixes in
dozens of countries; combining all vantage points yields *fewer*
prefixes than the largest single site (more evidence disqualifies more
blocks); the overall set spans thousands of ASes and most countries.
"""

from __future__ import annotations

from _common import emit
from repro.analysis.geo_dist import inventory_row
from repro.reporting.tables import format_table


def test_table6_inventory(study, benchmark):
    codes = [ixp.code for ixp in study.world.fabric.ixps]

    def collect():
        rows = {}
        for code in codes:
            result = study.infer(code, days=1)
            rows[code] = inventory_row(
                result.prefixes,
                study.world.datasets.geodb,
                study.world.datasets.pfx2as,
            )
        combined = study.infer("All", days=1)
        rows["All"] = inventory_row(
            combined.prefixes,
            study.world.datasets.geodb,
            study.world.datasets.pfx2as,
        )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(
        "table6_inventory",
        format_table(
            ["Vantage", "#Prefixes", "#ASes", "#Countries"],
            [(code, *rows[code]) for code in (*codes, "All")],
            title="Table 6 — meta-telescope prefixes per vantage point (1 day)",
        ),
    )
    prefixes = {code: row[0] for code, row in rows.items()}
    # CE1 and NA1 dominate the individual sites.
    top_two = sorted(codes, key=lambda c: -prefixes[c])[:2]
    assert set(top_two) == {"CE1", "NA1"}
    # Even tiny sites contribute (hundreds at paper scale).
    assert prefixes["NA3"] > 0
    assert prefixes["SE6"] > 0
    assert prefixes["NA3"] < prefixes["NA1"] / 10
    # Conservative pooling: combining sites disqualifies blocks, so the
    # union is far below the sum of the individual contributions (the
    # paper even measures All below the largest single site; at our
    # observation density the pooled set lands between the largest site
    # and the plain union — see EXPERIMENTS.md).
    assert prefixes["All"] < sum(prefixes[c] for c in codes)
    ce1_dark = set(study.infer("CE1", days=1).prefixes.tolist())
    all_dark = set(study.infer("All", days=1).prefixes.tolist())
    assert ce1_dark - all_dark, "pooled evidence must disqualify some blocks"
    # Broad coverage: many ASes and most countries.
    assert rows["All"][1] > 50
    assert rows["All"][2] > 30
