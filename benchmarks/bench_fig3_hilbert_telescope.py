"""Figure 3 — Hilbert map of the address space around a known telescope.

Paper shape: the inferred-dark pixels overwhelmingly fall inside the
telescope's gray box; only a handful land outside (and those may simply
be other unused space).
"""

from __future__ import annotations

from _common import emit
from repro.analysis.hilbert_viz import (
    hilbert_grid,
    precision_inside_reference,
    render_hilbert_ascii,
)
from repro.net.ipv4 import Prefix


def test_fig3_hilbert_around_tus1(study, benchmark):
    world = study.world
    tus1 = world.telescopes["TUS1"]
    # The /12 view containing the telescope (the paper shows a /8; our
    # ISP allocation is /12-scale).
    base = Prefix.from_ip(int(tus1.blocks[0]) << 8, 12)

    def analyse():
        result = study.infer("All", days=world.config.num_days)
        hilbert = hilbert_grid(
            base, result.prefixes, reference_blocks=tus1.blocks
        )
        inside, outside = precision_inside_reference(
            base, result.prefixes, tus1.blocks
        )
        return hilbert, inside, outside

    hilbert, inside, outside = benchmark.pedantic(analyse, rounds=1, iterations=1)
    art = render_hilbert_ascii(hilbert, max_side=64)
    emit(
        "fig3_hilbert_telescope",
        f"Figure 3 — Hilbert map of {base} ('#': inferred dark, "
        f"'.': telescope-only)\n"
        f"inferred-dark /24s inside the telescope: {inside}; outside: {outside}\n\n"
        + art,
    )
    # Most of the telescope is recovered and the view is precise:
    # pixels inside dominate those outside in the telescope's
    # neighbourhood (the outside of this /12 is mostly dark ISP space
    # too, so some dark pixels outside are expected and correct).
    assert inside > 0.4 * tus1.size()
    assert inside > 0
    assert "#" in art
