"""Batch vs chunked vs parallel pipeline benchmark (machine-readable).

Times the full seven-step inference per world size — with whole-view
aggregation (``chunk_size=None``), streaming through the
:class:`~repro.core.accum.PrefixAccumulator` in bounded chunks, and
fanning the aggregation across a process pool at each worker count in
``--workers-list`` — and records wall time, tracemalloc peak memory of
the aggregation phase, per-worker busy time, IPC overhead, merge time,
and whether the classifications are identical (they must be: chunked
and parallel paths are bit-identical by construction).  The record
carries the ``cpus`` the host actually granted, so a speedup read off
the artifact is always interpreted against real parallelism headroom.

Two storage sections ride along per scale: ``archive_vs_csv`` times
reading the full dataset from CSV vs flowpack archives (and proves the
archive-fed fold classifies bit-identically to the in-memory batch at
every chunk size and worker count — any dark-block divergence aborts
the run), and ``capture_cache`` times a cold observation round
(generate + store) against a warm one served entirely from the
content-addressed cache.

A ``kernel_scaling`` section times the aggregation under the
``kernel=numpy`` reference against ``kernel=native`` (whatever
provider resolves on this host — Numba, the bundled C library, or the
silent numpy fallback) across chunk sizes, records per-row costs, and
aborts on any classification divergence between backends.

The ``giant`` scale (≥50 M IXP rows per day) is special-cased: the day
is simulated once into a capture cache and every fold streams from the
flowpack archives — it only runs when requested explicitly
(``--scales giant``) and records generation cost, archive size, and
the per-kernel fold throughput at a row count where kernel choice
dominates wall time.

Results land in ``benchmarks/output/BENCH_pipeline.json`` (override
with ``--output``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --scales micro

CI runs exactly that as a smoke check; the full three-scale run plus
``giant`` is the performance artifact.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
import time
import tracemalloc

import numpy as np

from repro.core.accum import PrefixAccumulator
from repro.core.kernels import native_provider
from repro.core.metatelescope import MetaTelescope
from repro.core.parallel import default_workers, parallel_accumulate_views
from repro.core.pipeline import (
    PipelineConfig,
    accumulate_views,
    run_pipeline_accumulated,
)
from repro.io import (
    iter_flows_csv,
    read_flows_archive,
    read_flows_csv,
    write_flows_csv,
)
from repro.vantage.archive import ArchiveDayView, export_view
from repro.world.capture_cache import CaptureCache
from repro.world.observe import Observatory
from repro.world.scenarios import (
    giant_world,
    micro_world,
    paper_world,
    small_world,
)

_SCALES = {"micro": micro_world, "small": small_world, "paper": paper_world}
_OUTPUT = pathlib.Path(__file__).resolve().parent / "output" / "BENCH_pipeline.json"


def _timed_inference(views, routing, config, special, chunk_size):
    """(seconds, aggregation peak MiB, PipelineResult) for one mode."""
    tracemalloc.start()
    started = time.perf_counter()
    accumulator = accumulate_views(
        views,
        ignore_sources_from_asns=config.ignore_sources_from_asns,
        chunk_size=chunk_size,
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    result = run_pipeline_accumulated(accumulator, routing, config, special)
    return time.perf_counter() - started, peak / 2**20, result


def _ingest_peaks(view, chunk_rows: int) -> dict:
    """Peak memory ingesting the largest view from disk, both ways.

    The batch path must materialise the whole day before aggregating;
    the streamed path holds one parsed chunk plus the accumulator —
    this is where O(day) vs O(accumulator) memory shows up.
    """
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "day.csv"
        write_flows_csv(view.flows, path)

        tracemalloc.start()
        whole = read_flows_csv(path)
        PrefixAccumulator().update(
            whole,
            vantage=view.vantage,
            day=view.day,
            sampling_factor=view.sampling_factor,
        )
        _, batch_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del whole

        tracemalloc.start()
        streamed = PrefixAccumulator()
        for chunk in iter_flows_csv(path, chunk_rows=chunk_rows):
            streamed.update(
                chunk,
                vantage=view.vantage,
                day=view.day,
                sampling_factor=view.sampling_factor,
            )
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return {
        "rows": int(len(view.flows)),
        "batch_peak_mib": batch_peak / 2**20,
        "streamed_peak_mib": streamed_peak / 2**20,
    }


def _worker_scaling(
    views, routing, config, special, workers_list, baseline
) -> list[dict]:
    """Aggregation fan-out at each worker count, vs the serial result.

    The views are exported to flowpack archives first, so every worker
    count >1 exercises the production fan-out path: (path, row-range)
    descriptors over the **persistent** worker pool (``mode="pool"``),
    reused across entries exactly as it is across chunks and days —
    per-call fork cost is paid once, not per row in the table.

    Speedups are measured against this run's own ``workers=1`` wall
    time (first entry of ``workers_list``), not the batch timing above,
    so pool and IPC overhead are attributed honestly.  ``cpus`` is
    recorded per entry: on a single-CPU host every speedup >1 is noise
    and the honest reading of the section is pure-overhead accounting.
    """
    records = []
    serial_seconds = None
    cpus = default_workers()
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for index, view in enumerate(views):
            export_view(view, root / f"{index}.fpk")
        archived = [
            ArchiveDayView.open(root / f"{index}.fpk")
            for index in range(len(views))
        ]
        for workers in workers_list:
            started = time.perf_counter()
            accumulator, stats = parallel_accumulate_views(
                archived,
                ignore_sources_from_asns=config.ignore_sources_from_asns,
                workers=workers,
            )
            agg_seconds = time.perf_counter() - started
            result = run_pipeline_accumulated(
                accumulator, routing, config, special
            )
            total_seconds = time.perf_counter() - started
            if serial_seconds is None:
                serial_seconds = agg_seconds
            records.append(
                {
                    "workers": workers,
                    "cpus": cpus,
                    "mode": stats.mode,
                    "agg_seconds": agg_seconds,
                    "total_seconds": total_seconds,
                    "agg_speedup": serial_seconds / agg_seconds,
                    "worker_busy_s": [
                        report.fold_seconds for report in stats.reports
                    ],
                    "balance": stats.balance(),
                    "ipc_overhead_s": stats.ipc_seconds(),
                    "merge_s": stats.merge_seconds,
                    "num_dark": int(result.num_dark()),
                    "identical": _identical(baseline, result),
                }
            )
    return records


def _kernel_scaling(
    views, routing, config, special, chunk_size, baseline, repeats: int = 3
) -> dict:
    """``kernel=numpy`` vs ``kernel=native`` aggregation, per chunk size.

    Times the serial fold (aggregation only, best of ``repeats``) under
    each backend at whole-view, auto-chunked and fixed-chunk streaming,
    then classifies from each accumulator — classification must be
    bit-identical across backends (the kernel identity contract; any
    divergence aborts the artifact).  ``provider`` records what the
    native backend actually resolved to on this host: ``numba``, ``cc``
    or ``None`` when it silently degraded to the numpy reference —
    in which case the speedups hover at 1.0 by construction and the
    section documents the fallback, not a win.
    """
    rows = int(sum(len(view.flows) for view in views))
    entries = []
    baseline_seconds: dict[object, float] = {}
    for kernel in ("numpy", "native"):
        for size in (None, "auto", chunk_size):
            best = float("inf")
            accumulator = None
            for _ in range(repeats):
                started = time.perf_counter()
                accumulator = accumulate_views(
                    views,
                    ignore_sources_from_asns=config.ignore_sources_from_asns,
                    chunk_size=size,
                    kernel=kernel,
                )
                best = min(best, time.perf_counter() - started)
            result = run_pipeline_accumulated(
                accumulator, routing, config, special
            )
            if kernel == "numpy":
                baseline_seconds[size] = best
            entries.append(
                {
                    "kernel": kernel,
                    "chunk_size": size,
                    "agg_seconds": best,
                    "ns_per_row": best / rows * 1e9 if rows else None,
                    "speedup_vs_numpy": baseline_seconds[size] / best,
                    "num_dark": int(result.num_dark()),
                    "identical": _identical(baseline, result),
                }
            )
    return {
        "provider": native_provider(),
        "rows": rows,
        "repeats": repeats,
        "entries": entries,
    }


def _archive_vs_csv(
    views, routing, config, special, chunk_size, workers_list, baseline
) -> dict:
    """Flowpack archives vs CSV: read throughput and classification identity.

    Every view is written both ways; the read timing covers the whole
    dataset (parse for CSV, memmap + checksum for flowpack).  The
    archive-backed views then feed the accumulator chunked and in
    parallel — classification must be bit-identical to the in-memory
    batch baseline at every chunk size and worker count.
    """
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for index, view in enumerate(views):
            write_flows_csv(view.flows, root / f"{index}.csv")
            export_view(view, root / f"{index}.fpk")
        csv_bytes = sum(
            (root / f"{i}.csv").stat().st_size for i in range(len(views))
        )
        fpk_bytes = sum(
            (root / f"{i}.fpk").stat().st_size for i in range(len(views))
        )

        started = time.perf_counter()
        for index in range(len(views)):
            read_flows_csv(root / f"{index}.csv")
        csv_read_s = time.perf_counter() - started

        started = time.perf_counter()
        for index in range(len(views)):
            read_flows_archive(root / f"{index}.fpk")
        flowpack_read_s = time.perf_counter() - started

        archived = [
            ArchiveDayView.open(root / f"{index}.fpk")
            for index in range(len(views))
        ]
        identity = []
        for size in (chunk_size, None):
            accumulator = accumulate_views(
                archived,
                ignore_sources_from_asns=config.ignore_sources_from_asns,
                chunk_size=size,
            )
            result = run_pipeline_accumulated(
                accumulator, routing, config, special
            )
            identity.append(
                {
                    "chunk_size": size,
                    "workers": 1,
                    "num_dark": int(result.num_dark()),
                    "identical": _identical(baseline, result),
                }
            )
        for workers in workers_list:
            if workers <= 1:
                continue
            accumulator, _ = parallel_accumulate_views(
                archived,
                ignore_sources_from_asns=config.ignore_sources_from_asns,
                workers=workers,
            )
            result = run_pipeline_accumulated(
                accumulator, routing, config, special
            )
            identity.append(
                {
                    "chunk_size": None,
                    "workers": workers,
                    "num_dark": int(result.num_dark()),
                    "identical": _identical(baseline, result),
                }
            )
    return {
        "csv_bytes": int(csv_bytes),
        "flowpack_bytes": int(fpk_bytes),
        "csv_read_s": csv_read_s,
        "flowpack_read_s": flowpack_read_s,
        "read_speedup": csv_read_s / flowpack_read_s,
        "identity": identity,
    }


def _engine_overhead(
    views, routing, config, special, repeats: int, baseline
) -> dict:
    """Engine path (plan + execute + trace spine) vs the direct fold.

    Both paths do the same serial whole-view fold and classification;
    the engine path additionally builds an :class:`ExecutionPlan`,
    threads a :class:`RunContext`, and emits plan/view/stage events to
    the in-memory sink.  The overhead must stay small (the acceptance
    bar is 5%) — best-of-``repeats`` wall times keep scheduler noise
    out of the ratio.
    """
    from repro.core.engine import ExecutionPlanner, RunContext, execute_plan

    direct_s = engine_s = float("inf")
    engine_result = None
    for _ in range(repeats):
        started = time.perf_counter()
        accumulator = accumulate_views(
            views, ignore_sources_from_asns=config.ignore_sources_from_asns
        )
        run_pipeline_accumulated(accumulator, routing, config, special)
        direct_s = min(direct_s, time.perf_counter() - started)

        started = time.perf_counter()
        plan = ExecutionPlanner().plan(views)
        context = RunContext(knobs=plan.knobs, plan=plan)
        accumulator = execute_plan(
            plan, views, context,
            ignore_sources_from_asns=config.ignore_sources_from_asns,
        )
        engine_result = run_pipeline_accumulated(
            accumulator, routing, config, special, context=context
        )
        engine_s = min(engine_s, time.perf_counter() - started)
    return {
        "repeats": repeats,
        "direct_seconds": direct_s,
        "engine_seconds": engine_s,
        "overhead_ratio": engine_s / direct_s,
        "identical": _identical(baseline, engine_result),
    }


def _capture_cache_rounds(world, days: int) -> dict:
    """Cold (generate + store) vs warm (archives only) observation."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = CaptureCache(tmp)
        started = time.perf_counter()
        Observatory(world, capture_cache=cache).days(days)
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        Observatory(world, capture_cache=cache).days(days)
        warm_s = time.perf_counter() - started
        stats = cache.stats()
    return {
        "days": days,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s,
        "hits": stats.hits,
        "misses": stats.misses,
        "entries": stats.entries,
        "bytes": stats.bytes,
    }


def _ipv6_section(
    scale: str, seed: int, days: int, chunk_size: int, workers_list: list[int]
) -> dict:
    """End-to-end IPv6 over the same engine: coverage + path identity.

    Runs :func:`~repro.core.ipv6_telescope.infer_ipv6` over the scale's
    v6 world batch, chunked and parallel — the served /48 set and the
    snapshot must be bit-identical across paths, exactly like the v4
    sections above — and records the candidate-filter drop reasons plus
    the ground-truth recall/precision of the served set.
    """
    from repro.core.ipv6_telescope import infer_ipv6
    from repro.world.ipv6 import (
        ipv6_views,
        micro_ipv6_world,
        paper_ipv6_world,
        small_ipv6_world,
    )

    worlds = {
        "micro": micro_ipv6_world,
        "small": small_ipv6_world,
        "paper": paper_ipv6_world,
    }
    world = worlds[scale](seed)
    views = ipv6_views(world, num_days=days)
    rows = int(sum(len(view.flows) for view in views))

    started = time.perf_counter()
    batch = infer_ipv6(world, views)
    batch_s = time.perf_counter() - started

    workers = next((w for w in workers_list if w > 1), 2)
    paths = {
        "chunked": infer_ipv6(world, views, chunk_size=chunk_size),
        "parallel": infer_ipv6(world, views, workers=workers),
    }
    identity = {
        name: bool(
            np.array_equal(batch.served_sites, report.served_sites)
            and batch.snapshot.identical_to(report.snapshot)
        )
        for name, report in paths.items()
    }
    candidates = batch.candidates
    coverage = batch.coverage
    return {
        "days": len(views),
        "rows": rows,
        "seconds": batch_s,
        "funnel": dict(batch.result.pipeline.funnel.as_rows("/48 sites")),
        "num_dark": int(len(batch.result.pipeline.dark_blocks)),
        "candidates": {
            "observed": candidates.observed,
            "kept": len(candidates.candidate_sites),
            "dropped_unannounced": candidates.dropped_unannounced,
            "dropped_hitlist": candidates.dropped_hitlist,
            "dropped_sources": candidates.dropped_sources,
        },
        "served": coverage.served,
        "truth_dark": coverage.truth_dark,
        "recall": coverage.recall(),
        "precision": coverage.precision(),
        "parallel_workers": workers,
        "identity": identity,
    }


def _identical(a, b) -> bool:
    return (
        np.array_equal(a.dark_blocks, b.dark_blocks)
        and np.array_equal(a.unclean_blocks, b.unclean_blocks)
        and np.array_equal(a.gray_blocks, b.gray_blocks)
        and a.funnel == b.funnel
    )


def bench_world(
    scale: str,
    seed: int,
    days: int,
    chunk_size: int,
    workers_list: list[int],
) -> dict:
    """Benchmark one world size; returns its JSON record."""
    world = _SCALES[scale](seed)
    observatory = Observatory(world)
    days = min(days, world.config.num_days)
    views = observatory.all_ixp_views(num_days=days)
    telescope = MetaTelescope(
        collector=world.collector,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )
    routing = telescope.routing_for_days([view.day for view in views])

    batch_s, batch_mib, batch = _timed_inference(
        views, routing, telescope.config, telescope.special, None
    )
    chunked_s, chunked_mib, chunked = _timed_inference(
        views, routing, telescope.config, telescope.special, chunk_size
    )
    largest = max(views, key=lambda view: len(view.flows))
    ingest = _ingest_peaks(largest, chunk_size)
    scaling = _worker_scaling(
        views, routing, telescope.config, telescope.special,
        workers_list, batch,
    )
    kernels = _kernel_scaling(
        views, routing, telescope.config, telescope.special,
        chunk_size, batch,
    )
    archive = _archive_vs_csv(
        views, routing, telescope.config, telescope.special,
        chunk_size, workers_list, batch,
    )
    overhead = _engine_overhead(
        views, routing, telescope.config, telescope.special, 7, batch
    )
    cache = _capture_cache_rounds(world, days)
    ipv6 = _ipv6_section(scale, seed, days, chunk_size, workers_list)
    return {
        "scale": scale,
        "days": days,
        "views": len(views),
        "rows": int(sum(len(view.flows) for view in views)),
        "largest_view_rows": int(max(len(view.flows) for view in views)),
        "num_dark": int(batch.num_dark()),
        "identical": _identical(batch, chunked),
        "batch": {"seconds": batch_s, "agg_peak_mib": batch_mib},
        "chunked": {
            "seconds": chunked_s,
            "agg_peak_mib": chunked_mib,
            "chunk_size": chunk_size,
        },
        "ingest_largest_view": ingest,
        "worker_scaling": scaling,
        "kernel_scaling": kernels,
        "archive_vs_csv": archive,
        "engine_overhead": overhead,
        "capture_cache": cache,
        "ipv6": ipv6,
    }


#: The giant scale's contract: at least this many IXP rows per day.
GIANT_ROWS_PER_DAY_FLOOR = 50_000_000


def bench_giant(
    seed: int, chunk_size: int, cache_dir: pathlib.Path | None
) -> dict:
    """The ≥50 M rows/day stress scale, archive-backed end to end.

    One giant day is simulated straight into a :class:`CaptureCache`
    (into ``--giant-cache`` when given, so re-runs skip the minutes of
    generation; a temporary directory otherwise), the in-memory views
    are dropped, and a second observatory recalls the day purely as
    flowpack archives.  Each kernel backend then streams the archived
    rows through the accumulator in bounded chunks — at this row count
    the fold dominates wall time, so this is the honest single-core
    kernel comparison — and classifies; backends must agree bit for
    bit.  Falling short of the 50 M rows/day floor aborts the artifact.
    """
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(cache_dir) if cache_dir is not None else pathlib.Path(tmp)
        root.mkdir(parents=True, exist_ok=True)
        cache = CaptureCache(root)

        started = time.perf_counter()
        world = giant_world(seed)
        build_seconds = time.perf_counter() - started

        started = time.perf_counter()
        Observatory(world, capture_cache=cache).day(0)
        generate_seconds = time.perf_counter() - started
        stats = cache.stats()
        generated = stats.misses > 0

        warm = Observatory(world, capture_cache=cache)
        views = warm.all_ixp_views(num_days=1)
        rows = int(sum(_view_rows(view) for view in views))
        if rows < GIANT_ROWS_PER_DAY_FLOOR:
            raise SystemExit(
                f"giant scale produced {rows:,} rows/day — below the "
                f"{GIANT_ROWS_PER_DAY_FLOOR:,} floor"
            )

        telescope = MetaTelescope(
            collector=world.collector,
            config=PipelineConfig(
                avg_size_threshold=world.config.avg_size_threshold,
                volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
            ),
        )
        routing = telescope.routing_for_days([0])

        entries = []
        results = {}
        numpy_seconds: dict[object, float] = {}
        for kernel in ("numpy", "native"):
            for size in ("auto", chunk_size):
                started = time.perf_counter()
                accumulator = accumulate_views(
                    views,
                    ignore_sources_from_asns=(
                        telescope.config.ignore_sources_from_asns
                    ),
                    chunk_size=size,
                    kernel=kernel,
                )
                agg_seconds = time.perf_counter() - started
                result = run_pipeline_accumulated(
                    accumulator, routing, telescope.config, telescope.special
                )
                results[kernel] = result
                if kernel == "numpy":
                    numpy_seconds[size] = agg_seconds
                entries.append(
                    {
                        "kernel": kernel,
                        "chunk_size": size,
                        "agg_seconds": agg_seconds,
                        "ns_per_row": agg_seconds / rows * 1e9,
                        "mrows_per_s": rows / agg_seconds / 1e6,
                        "speedup_vs_numpy": numpy_seconds[size] / agg_seconds,
                        "num_dark": int(result.num_dark()),
                    }
                )
        identical = _identical(results["numpy"], results["native"])
        return {
            "scale": "giant",
            "days": 1,
            "views": len(views),
            "rows": rows,
            "rows_per_day": rows,
            "archive_bytes": int(cache.stats().bytes),
            "build_seconds": build_seconds,
            "generate_seconds": generate_seconds if generated else None,
            "cached_generation": not generated,
            "num_dark": int(results["numpy"].num_dark()),
            "identical": identical,
            "kernel_scaling": {
                "provider": native_provider(),
                "rows": rows,
                "repeats": 1,
                "entries": entries,
            },
        }


def _view_rows(view) -> int:
    rows = getattr(view, "num_rows", None)
    return len(view.flows) if rows is None else rows


def _print_kernel_scaling(section: dict, scale: str) -> None:
    """Per-entry kernel timings; aborts on any backend divergence."""
    provider = section["provider"] or "none — numpy fallback"
    print(f"  kernels (native provider: {provider}):")
    for row in section["entries"]:
        identical = row.get("identical")
        suffix = "" if identical is None else f", identical={identical}"
        print(
            f"    kernel={row['kernel']} chunk={row['chunk_size']}: "
            f"{row['agg_seconds']:.3f}s "
            f"({row['ns_per_row']:.0f} ns/row, "
            f"x{row.get('speedup_vs_numpy', 1.0):.2f}){suffix}"
        )
        if identical is False:
            raise SystemExit(
                f"kernel={row['kernel']} diverged from the batch baseline "
                f"on scale {scale} at chunk_size={row['chunk_size']}: "
                f"{row['num_dark']} dark blocks"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", nargs="+", choices=sorted([*_SCALES, "giant"]),
        default=["micro", "small", "paper"],
        help="'giant' (≥50 M rows/day) never runs unless named here",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--days", type=int, default=2)
    parser.add_argument("--chunk-size", type=int, default=4096)
    parser.add_argument(
        "--workers-list", type=int, nargs="+", default=[1, 2, 4, 8],
        help="worker counts for the fan-out scaling section "
        "(first entry is the speedup baseline)",
    )
    parser.add_argument(
        "--giant-cache", type=pathlib.Path, default=None,
        help="persistent capture cache for the giant scale (re-runs "
        "skip the minutes-long day simulation); temporary by default",
    )
    parser.add_argument("--output", type=pathlib.Path, default=_OUTPUT)
    args = parser.parse_args(argv)

    records = []
    for scale in args.scales:
        if scale == "giant":
            record = bench_giant(args.seed, args.chunk_size, args.giant_cache)
            records.append(record)
            print(
                f"giant: {record['rows']:,} rows/day over "
                f"{record['views']} views "
                f"({record['archive_bytes'] / 2**30:.2f} GiB archived), "
                f"identical={record['identical']}"
            )
            _print_kernel_scaling(record["kernel_scaling"], scale)
            if not record["identical"]:
                raise SystemExit("kernel backends diverged on scale giant")
            continue
        record = bench_world(
            scale, args.seed, args.days, args.chunk_size, args.workers_list
        )
        records.append(record)
        print(
            f"{scale}: {record['rows']:,} rows, "
            f"batch {record['batch']['seconds']:.2f}s "
            f"(agg peak {record['batch']['agg_peak_mib']:.1f} MiB), "
            f"chunked {record['chunked']['seconds']:.2f}s "
            f"(agg peak {record['chunked']['agg_peak_mib']:.1f} MiB), "
            f"identical={record['identical']}"
        )
        ingest = record["ingest_largest_view"]
        print(
            f"  ingest {ingest['rows']:,} rows from CSV: whole-day peak "
            f"{ingest['batch_peak_mib']:.1f} MiB vs streamed "
            f"{ingest['streamed_peak_mib']:.1f} MiB"
        )
        if not record["identical"]:
            raise SystemExit(f"chunked != batch on scale {scale}")
        for row in record["worker_scaling"]:
            print(
                f"  workers={row['workers']} ({row['mode']}): agg "
                f"{row['agg_seconds']:.2f}s (x{row['agg_speedup']:.2f}), "
                f"ipc {row['ipc_overhead_s'] * 1e3:.0f}ms, merge "
                f"{row['merge_s'] * 1e3:.0f}ms, balance "
                f"{row['balance']:.2f}, identical={row['identical']}"
            )
            if not row["identical"]:
                raise SystemExit(
                    f"parallel != serial on scale {scale} at "
                    f"workers={row['workers']}: {row['num_dark']} vs "
                    f"{record['num_dark']} dark blocks"
                )
        _print_kernel_scaling(record["kernel_scaling"], scale)
        archive = record["archive_vs_csv"]
        print(
            f"  archive: csv read {archive['csv_read_s']:.2f}s "
            f"({archive['csv_bytes'] / 2**20:.1f} MiB) vs flowpack "
            f"{archive['flowpack_read_s']:.3f}s "
            f"({archive['flowpack_bytes'] / 2**20:.1f} MiB) — "
            f"x{archive['read_speedup']:.1f}"
        )
        for row in archive["identity"]:
            if not row["identical"]:
                raise SystemExit(
                    f"archive-fed != batch on scale {scale} at "
                    f"chunk_size={row['chunk_size']} "
                    f"workers={row['workers']}: {row['num_dark']} vs "
                    f"{record['num_dark']} dark blocks"
                )
        overhead = record["engine_overhead"]
        print(
            f"  engine: direct {overhead['direct_seconds']:.3f}s vs "
            f"planned {overhead['engine_seconds']:.3f}s "
            f"(x{overhead['overhead_ratio']:.3f}), "
            f"identical={overhead['identical']}"
        )
        if not overhead["identical"]:
            raise SystemExit(
                f"engine path != direct path on scale {scale}"
            )
        cache = record["capture_cache"]
        print(
            f"  capture cache: cold {cache['cold_seconds']:.2f}s, warm "
            f"{cache['warm_seconds']:.2f}s (x{cache['speedup']:.1f}), "
            f"{cache['hits']} hit(s) / {cache['misses']} miss(es), "
            f"{cache['entries']} archive(s), "
            f"{cache['bytes'] / 2**20:.1f} MiB"
        )
        if cache["hits"] != cache["entries"] or cache["hits"] == 0:
            raise SystemExit(
                f"capture cache did not serve the warm run on scale "
                f"{scale}: {cache['hits']} hits over {cache['entries']} "
                "cached archives"
            )
        ipv6 = record["ipv6"]
        print(
            f"  ipv6: {ipv6['rows']:,} rows, {ipv6['seconds']:.2f}s, "
            f"served {ipv6['served']} /48s against {ipv6['truth_dark']} "
            f"truly dark (recall {ipv6['recall']:.1%}, "
            f"precision {ipv6['precision']:.1%}), "
            f"identity={ipv6['identity']}"
        )
        if not all(ipv6["identity"].values()):
            raise SystemExit(
                f"ipv6 engine paths diverged on scale {scale}: "
                f"{ipv6['identity']}"
            )

    payload = {
        "benchmark": "pipeline-batch-vs-chunked",
        "seed": args.seed,
        "chunk_size": args.chunk_size,
        "cpus": default_workers(),
        "workers_list": args.workers_list,
        "worlds": records,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
