"""Ablation — the vantage-point effect (paper Section 9).

The paper's future work: run the methodology on a large transit ISP's
NetFlow instead of IXP IPFIX.  Expected advantages, all asserted here:
no asymmetric-routing blind spots, BCP 38 already deployed (in-cone
spoofing never enters), and lighter sampling — together yielding an
inference at least as clean as a major IXP's.
"""

from __future__ import annotations

from _common import emit
from repro.core.evaluation import confusion_against_truth
from repro.reporting.tables import format_table
from repro.vantage.transit import TransitIspVantage


def test_ablation_transit_vantage(study, benchmark):
    world = study.world
    tier1 = world.topology.tier1_asns()[0]

    def run():
        rng = world.config.child_rng("transit-ablation")
        traffic_rng = world.config.child_rng("traffic-day-0")
        ground = world.annotate_dst_asn(world.mix.generate_day(0, traffic_rng))
        rows = []
        for label, bcp38 in (("transit+BCP38", True), ("transit", False)):
            vantage = TransitIspVantage(
                code="TR1",
                asn=tier1,
                topology=world.topology,
                pfx2as=world.datasets.pfx2as,
                sampling_factor=4.0,
                bcp38_at_edge=bcp38,
            )
            view = vantage.capture(ground, day=0, rng=rng)
            result = study.telescope.infer(
                [view], use_spoofing_tolerance=True, refine=False
            )
            confusion = confusion_against_truth(
                result.pipeline.dark_blocks, world.index
            )
            rows.append(
                (
                    label,
                    result.pipeline.num_dark(),
                    confusion.false_positive_rate_of_inferred(),
                    confusion.recall(),
                )
            )
        ce1 = study.infer("CE1", days=1, refine=False)
        ce1_confusion = confusion_against_truth(
            ce1.pipeline.dark_blocks, world.index
        )
        rows.append(
            (
                "CE1 (IXP)",
                ce1.pipeline.num_dark(),
                ce1_confusion.false_positive_rate_of_inferred(),
                ce1_confusion.recall(),
            )
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_transit_vantage",
        format_table(
            ["Vantage", "#Dark", "FP share", "Recall"],
            rows,
            title="Ablation — transit-ISP vantage vs IXP (1 day)",
        ),
    )
    by_label = {row[0]: row for row in rows}
    transit = by_label["transit+BCP38"]
    ce1 = by_label["CE1 (IXP)"]
    # The transit vantage sees its cone far better than the IXP sees
    # the world: much higher recall at a lower raw FP share.
    assert transit[3] > ce1[3]
    assert transit[2] < ce1[2]
    # BCP 38 at the edge lowers the false-positive share (it removes
    # in-cone spoofed pollution; note it *also* lowers the computed
    # tolerance, so the raw dark count can go either way).
    assert transit[2] <= by_label["transit"][2]
