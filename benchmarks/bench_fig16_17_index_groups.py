"""Figures 16 & 17 — prefix-index ECDFs by network type and continent.

Paper shape: data-center space has a visibly smaller share of
meta-telescope /24s than the other classes; by continent, Europe (and
Africa) have the smallest shares — both consequences of address
scarcity at allocation time.
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.analysis.nettypes import dark_share_by_type
from repro.analysis.prefix_index import index_values_by_group
from repro.reporting.ecdf import Ecdf, render_ecdf_rows
from repro.reporting.tables import format_table


def test_fig16_17_index_by_group(study, benchmark):
    world = study.world

    def collect():
        blocks = study.union_final_blocks()
        routing = study.telescope.routing_for_days(
            list(range(world.config.num_days))
        )
        type_of_asn = {
            a.asn: a.as_type.value for a in world.registry
        }
        continent_of_asn = {
            a.asn: a.continent.value for a in world.registry
        }
        lengths = tuple(range(8, 21))
        by_type = index_values_by_group(blocks, routing, type_of_asn, lengths)
        by_continent = index_values_by_group(
            blocks, routing, continent_of_asn, lengths
        )
        shares = dark_share_by_type(
            blocks, world.index.blocks, world.datasets.pfx2as,
            world.datasets.ipinfo,
        )
        return by_type, by_continent, shares

    by_type, by_continent, shares = benchmark.pedantic(
        collect, rounds=1, iterations=1
    )
    grid = np.array([0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0])
    type_ecdfs = {group: Ecdf(v) for group, v in sorted(by_type.items())}
    continent_ecdfs = {
        group: Ecdf(v) for group, v in sorted(by_continent.items())
    }
    emit(
        "fig16_17_index_groups",
        format_table(
            ["dark share <=", *type_ecdfs],
            render_ecdf_rows(type_ecdfs, grid),
            title="Figure 16 — prefix-index ECDF per network type",
        )
        + "\n\n"
        + format_table(
            ["dark share <=", *continent_ecdfs],
            render_ecdf_rows(continent_ecdfs, grid),
            title="Figure 17 — prefix-index ECDF per continent",
        )
        + "\n\nShare of announced space inferred dark per type: "
        + str({k: round(v, 3) for k, v in shares.items()}),
    )
    # Data centers hold the smallest dark share.
    assert shares["Data Center"] == min(shares.values())
    # Per-prefix view agrees: DC's median index is the lowest.
    medians = {
        group: float(np.median(values)) for group, values in by_type.items()
    }
    assert medians["Data Center"] == min(medians.values())
    # Europe's index is below North America's (address scarcity).
    continent_means = {
        group: float(np.mean(values))
        for group, values in by_continent.items()
        if len(values) >= 5
    }
    assert continent_means["EU"] < continent_means["NA"]
