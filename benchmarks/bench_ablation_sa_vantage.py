"""Ablation — vantage placement (paper Section 6.1 / 6.3).

The paper attributes South America's weak coverage to the lack of a
South-American IXP among its vantage points: "the likely explanation
is that we do not have an IXP vantage point within South America.  To
overcome this aspect, one might need vantage points closer to these
regions."  The simulator can test the claim: add a hypothetical SA IXP
to the same world and the region's coverage must improve markedly
while the rest barely moves.

Runs at the small scale (it needs a second, counterfactual world).
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.core.metatelescope import MetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.geo.countries import Continent
from repro.reporting.tables import format_table
from repro.world.builder import build_world
from repro.world.config import IxpSpec, small_config
from repro.world.observe import Observatory


def _regional_stats(world, views, prefixes, continent: Continent):
    """(recall, mean sampled pkts per truly-dark block) for a region."""
    regional = world.index.blocks_of_continent(continent)
    truly_dark = np.intersect1d(regional, world.index.truly_dark_blocks())
    if len(truly_dark) == 0:
        return 0.0, 0.0
    recall = float(np.isin(truly_dark, prefixes).mean())
    sampled = 0.0
    for view in views:
        agg = view.aggregates()
        mask = np.isin(agg.blocks, truly_dark)
        sampled += float(agg.total_packets()[mask].sum())
    return recall, sampled / len(truly_dark)


def _run(config):
    world = build_world(config)
    observatory = Observatory(world)
    telescope = MetaTelescope(
        collector=world.collector,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )
    week = config.num_days
    views = observatory.all_ixp_views(num_days=week)
    result = telescope.infer(views, use_spoofing_tolerance=True, refine=False)
    return world, views, result


def test_ablation_sa_vantage(benchmark):
    base = small_config(seed=7)
    with_sa = base.scaled(
        ixps=base.ixps + (IxpSpec("SA1", "SA", 0.5, 0.15, 8.0),)
    )

    def run():
        return _run(base), _run(with_sa)

    (world_a, views_a, result_a), (world_b, views_b, result_b) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    rows = []
    stats = {}
    for continent in (Continent.SOUTH_AMERICA, Continent.NORTH_AMERICA,
                      Continent.EUROPE):
        without = _regional_stats(world_a, views_a, result_a.prefixes, continent)
        with_vantage = _regional_stats(
            world_b, views_b, result_b.prefixes, continent
        )
        stats[continent] = (without, with_vantage)
        rows.append(
            (
                continent.value,
                f"{without[0]:.3f}", f"{without[1]:.2f}",
                f"{with_vantage[0]:.3f}", f"{with_vantage[1]:.2f}",
            )
        )
    emit(
        "ablation_sa_vantage",
        format_table(
            ["Region", "Recall (14)", "Pkts//24 (14)",
             "Recall (+SA1)", "Pkts//24 (+SA1)"],
            rows,
            title="Ablation — adding a South-American vantage point "
            "(small scale, week)",
        ),
    )
    (sa_without, sa_depth_without), (sa_with, sa_depth_with) = stats[
        Continent.SOUTH_AMERICA
    ]
    # The local vantage deepens observation of its own region (the
    # improvement is bounded because remote peering already carries
    # part of SA's traffic to the other fabrics — the same reason the
    # paper still sees *some* SA prefixes without a local site) ...
    assert sa_depth_with > sa_depth_without * 1.05
    # ... without losing coverage there or elsewhere (the SA sample is
    # only a handful of truly-dark /24s at this scale, so allow one
    # block of noise).
    assert sa_with >= sa_without - 0.15
    for continent in (Continent.NORTH_AMERICA, Continent.EUROPE):
        (without, _), (with_vantage, _) = stats[continent]
        assert with_vantage > without - 0.1
