"""Table 4 — meta-telescope coverage of the operational telescopes.

Paper shape: TUS1 is invisible at CE1 (zero coverage there) but well
covered using all vantage points, and far better with 7 days than with
1; TEU2 is never inferred on day one (its traffic trips the volume
filter during the April-24 event) yet is almost fully recovered over
the week; TEU1 is partially covered (most of it is lent to end users).
"""

from __future__ import annotations

from _common import emit
from repro.core.evaluation import telescope_coverage
from repro.reporting.tables import format_table


def test_table4_telescope_coverage(study, benchmark):
    week = study.world.config.num_days

    def infer_all():
        return {
            ("CE1", 1): study.infer("CE1", days=1, refine=False),
            ("CE1", week): study.infer("CE1", days=week, refine=False),
            ("All", 1): study.infer("All", days=1, refine=False),
            ("All", week): study.infer("All", days=week, refine=False),
        }

    results = benchmark.pedantic(infer_all, rounds=1, iterations=1)
    rows = []
    coverage = {}
    for code, telescope in study.world.telescopes.items():
        row = [code, telescope.size()]
        for days in (1, week):
            for vantage in ("CE1", "All"):
                day = 0 if days == 1 else None
                cell = telescope_coverage(
                    results[(vantage, days)].pipeline.dark_blocks,
                    telescope,
                    day=day,
                ).inferred_inside
                coverage[(code, vantage, days)] = cell
                row.append(cell)
        rows.append(row)
    emit(
        "table4_coverage",
        format_table(
            ["Code", "Size", "CE1 1d", "All 1d", "CE1 7d", "All 7d"],
            rows,
            title="Table 4 — inferred meta-telescope prefixes inside telescopes",
        ),
    )
    # TUS1 is not visible at CE1 at all.
    assert coverage[("TUS1", "CE1", 1)] == 0
    assert coverage[("TUS1", "CE1", week)] == 0
    # All vantage points recover a substantial share, growing with days.
    assert coverage[("TUS1", "All", 1)] > 0.1 * study.world.telescopes["TUS1"].size()
    assert coverage[("TUS1", "All", week)] > coverage[("TUS1", "All", 1)]
    # TEU2: zero on the event day, recovered over the week.
    assert coverage[("TEU2", "CE1", 1)] == 0
    assert coverage[("TEU2", "All", 1)] == 0
    assert coverage[("TEU2", "All", week)] >= 7
    assert coverage[("TEU2", "CE1", week)] >= 4
    # TEU1 is partially covered (lending keeps most of it active).
    assert 0 < coverage[("TEU1", "All", week)] < study.world.telescopes["TEU1"].size()
