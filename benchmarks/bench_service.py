"""Query-service benchmark: latency, publish/swap cost, batch parity.

Folds an online engine over a world, publishes snapshots through the
atomic-swap handle, then measures what an operator of the *service*
cares about:

- point-query latency (p50/p99) straight through the socket-free query
  engine, and through the HTTP daemon for the wire-overhead comparison;
- snapshot publish time (build + enrich + swap) and the swap itself;
- sustained queries/sec from concurrent reader threads while a writer
  keeps republishing — the serving contract says readers never block;
- batch parity: every point answer must agree with the batch
  :meth:`MetaTelescope.infer` dark set over the full world sweep.  Any
  divergence aborts the run — this artifact doubles as the CI gate.

Results land in ``benchmarks/output/BENCH_service.json`` (override
with ``--output``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py --scale micro
"""

from __future__ import annotations

import argparse
import json
import pathlib
import threading
import time
import urllib.request

import numpy as np

from repro.core.metatelescope import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.service import (
    BackgroundFolder,
    MetaTelescopeService,
    QueryBudget,
    run_daemon_in_thread,
)
from repro.world.observe import Observatory
from repro.world.scenarios import micro_world, small_world

_SCALES = {"micro": micro_world, "small": small_world}
_OUTPUT = (
    pathlib.Path(__file__).resolve().parent / "output" / "BENCH_service.json"
)


def _telescope(world) -> MetaTelescope:
    return MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


def _percentiles(samples_s: list[float]) -> dict[str, float]:
    arr = np.asarray(samples_s) * 1e6  # microseconds
    return {
        "p50_us": float(np.percentile(arr, 50)),
        "p99_us": float(np.percentile(arr, 99)),
        "mean_us": float(arr.mean()),
    }


def bench_scale(scale: str, seed: int, days: int, point_queries: int) -> dict:
    world = _SCALES[scale](seed)
    observatory = Observatory(world)
    days = min(days, world.config.num_days)
    telescope = _telescope(world)
    online = OnlineMetaTelescope(
        telescope=telescope, window_days=min(3, days), min_stable_days=2
    )
    service = MetaTelescopeService(
        pfx2as=world.datasets.pfx2as,
        geodb=world.datasets.geodb,
        health_provider=online.health_report,
        budget=QueryBudget(max_results=1000),
    )
    folder = BackgroundFolder(online, service)

    # -- publish cost (fold + enrich + swap), and the bare swap --------
    publish_s = []
    views_by_day = {
        day: list(observatory.day(day).ixp_views.values())
        for day in range(days)
    }
    for day in range(days):
        online.update(day, views_by_day[day])
        t0 = time.perf_counter()
        service.publish(online.snapshot())
        publish_s.append(time.perf_counter() - t0)
    snapshot = service.handle.current()
    swap_s = []
    for _ in range(200):
        t0 = time.perf_counter()
        service.handle.publish(snapshot)
        swap_s.append(time.perf_counter() - t0)

    # -- engine parity: the served dark set IS the engine's ------------
    served = snapshot.dark_blocks
    if not np.array_equal(served, np.sort(online.current_prefixes())):
        raise SystemExit(
            f"{scale}: served dark set diverged from the online engine"
        )

    # -- point latency (and per-answer consistency) --------------------
    rng = np.random.default_rng(seed)
    probe_pool = np.concatenate([
        served,
        rng.integers(0, 2**24, size=max(1, point_queries // 4)),
    ])
    probes = rng.choice(probe_pool, size=point_queries)
    served_set = set(served.tolist())
    point_s = []
    for block in probes:
        t0 = time.perf_counter()
        answer = service.point(str(int(block)))
        point_s.append(time.perf_counter() - t0)
        if answer["dark"] != (int(block) in served_set):
            raise SystemExit(
                f"parity violation: service says dark={answer['dark']} "
                f"for block {int(block)}, snapshot says "
                f"{int(block) in served_set}"
            )

    # -- batch parity: serve a batch-built snapshot, sweep every block -
    window_views = [
        view
        for day in sorted(online.days_in_window())
        for view in views_by_day[day]
    ]
    batch = telescope.infer(window_views)
    batch_service = MetaTelescopeService()
    batch_service.publish(telescope.infer_snapshot(window_views))
    batch_dark = set(np.sort(batch.prefixes).tolist())
    sweep = np.union1d(
        batch_service.handle.current().blocks, np.asarray(probes)
    )
    for block in sweep:
        if batch_service.point(str(int(block)))["dark"] != (
            int(block) in batch_dark
        ):
            raise SystemExit(
                f"batch parity violation on block {int(block)}"
            )
    parity_batch = True

    # -- sustained qps: concurrent readers + a republishing writer -----
    duration = 2.0
    counts = [0, 0, 0, 0]
    stop = threading.Event()

    def reader(slot: int) -> None:
        local_rng = np.random.default_rng(seed + slot)
        while not stop.is_set():
            block = int(local_rng.choice(probe_pool))
            service.point(str(block))
            counts[slot] += 1

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(len(counts))
    ]
    for thread in threads:
        thread.start()
    t0 = time.perf_counter()
    republishes = 0
    while time.perf_counter() - t0 < duration:
        service.handle.publish(snapshot)
        republishes += 1
        time.sleep(0.01)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    qps = sum(counts) / elapsed

    # -- HTTP wire overhead --------------------------------------------
    daemon, stop_daemon = run_daemon_in_thread(service)
    http_s = []
    try:
        url = daemon.base_url
        for block in probes[: min(200, len(probes))]:
            t0 = time.perf_counter()
            with urllib.request.urlopen(
                f"{url}/v1/point?block={int(block)}", timeout=10
            ) as reply:
                json.loads(reply.read())
            http_s.append(time.perf_counter() - t0)
    finally:
        stop_daemon()

    return {
        "scale": scale,
        "days": days,
        "blocks": len(snapshot),
        "dark_blocks": len(served),
        "publish": {
            "seconds_per_publish": float(np.mean(publish_s)),
            "swap_us": _percentiles(swap_s),
        },
        "point": _percentiles(point_s),
        "http_point": _percentiles(http_s),
        "concurrent": {
            "readers": len(counts),
            "republishes": republishes,
            "queries_per_second": qps,
        },
        "parity": {
            "point_queries_checked": int(point_queries),
            "batch_sweep_blocks": int(len(sweep)),
            "batch_identical": parity_batch,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", nargs="+", choices=sorted(_SCALES), default=["micro"]
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--point-queries", type=int, default=2000)
    parser.add_argument("--output", type=pathlib.Path, default=_OUTPUT)
    args = parser.parse_args(argv)

    records = []
    for scale in args.scales:
        record = bench_scale(scale, args.seed, args.days, args.point_queries)
        records.append(record)
        print(
            f"{scale}: {record['blocks']:,} blocks "
            f"({record['dark_blocks']:,} dark), "
            f"point p50 {record['point']['p50_us']:.0f}us "
            f"p99 {record['point']['p99_us']:.0f}us, "
            f"http p50 {record['http_point']['p50_us']:.0f}us, "
            f"swap p50 {record['publish']['swap_us']['p50_us']:.1f}us, "
            f"{record['concurrent']['queries_per_second']:,.0f} qps "
            f"under {record['concurrent']['republishes']} republishes"
        )
        if not record["parity"]["batch_identical"]:
            raise SystemExit(f"served set diverged from batch on {scale}")

    payload = {
        "benchmark": "service-latency-and-parity",
        "seed": args.seed,
        "worlds": records,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
