"""Query-service benchmark: latency, publish/swap cost, batch parity.

Folds an online engine over a world, publishes snapshots through the
atomic-swap handle, then measures what an operator of the *service*
cares about:

- point-query latency (p50/p99) straight through the socket-free query
  engine, and through the HTTP daemon for the wire-overhead comparison;
- snapshot publish time (build + enrich + swap) and the swap itself;
- sustained queries/sec from concurrent reader threads while a writer
  keeps republishing — the serving contract says readers never block;
- batch parity: every point answer must agree with the batch
  :meth:`MetaTelescope.infer` dark set over the full world sweep.  Any
  divergence aborts the run — this artifact doubles as the CI gate;
- **process scaling**: an SO_REUSEPORT fleet at each ``--process-counts``
  size, hammered by spawned load-generator processes with a
  point/range/diff mix while the supervisor republishes mid-run.  Every
  answer is validated against the per-version truth (a wrong bit at any
  served version is a torn read and aborts), a parity sweep asserts
  byte-identical answers across workers, and on a ≥4-core host the
  4-process aggregate qps must reach 2.5x the single process's;
- **delta archive**: a ``--publishes``-long republish sequence appended
  to a :class:`SnapshotDeltaStore` must cost ≤25% of the same sequence
  as full snapshots while reconstructing every retained version
  bit-identically.

Results land in ``benchmarks/output/BENCH_service.json`` (override
with ``--output``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py --scale micro
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import multiprocessing
import os
import pathlib
import shutil
import tempfile
import threading
import time
import urllib.request

import numpy as np

from repro.core.metatelescope import MetaTelescope
from repro.core.online import OnlineMetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.core.snapshot import VERDICT_DARK, VERDICT_GRAY
from repro.core.snapshot_store import SnapshotDeltaStore
from repro.net.ipv4 import block_to_prefix
from repro.service import (
    BackgroundFolder,
    FleetSupervisor,
    MetaTelescopeService,
    QueryBudget,
    SnapshotHandle,
    run_daemon_in_thread,
)
from repro.world.observe import Observatory
from repro.world.scenarios import micro_world, small_world

_SCALES = {"micro": micro_world, "small": small_world}
_OUTPUT = (
    pathlib.Path(__file__).resolve().parent / "output" / "BENCH_service.json"
)


def _telescope(world) -> MetaTelescope:
    return MetaTelescope(
        collector=world.collector,
        liveness=world.datasets.liveness,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            avg_size_threshold=world.config.avg_size_threshold,
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day,
        ),
    )


def _percentiles(samples_s: list[float]) -> dict[str, float]:
    arr = np.asarray(samples_s) * 1e6  # microseconds
    return {
        "p50_us": float(np.percentile(arr, 50)),
        "p99_us": float(np.percentile(arr, 99)),
        "mean_us": float(arr.mean()),
    }


def bench_scale(scale: str, seed: int, days: int, point_queries: int) -> dict:
    world = _SCALES[scale](seed)
    observatory = Observatory(world)
    days = min(days, world.config.num_days)
    telescope = _telescope(world)
    online = OnlineMetaTelescope(
        telescope=telescope, window_days=min(3, days), min_stable_days=2
    )
    service = MetaTelescopeService(
        pfx2as=world.datasets.pfx2as,
        geodb=world.datasets.geodb,
        health_provider=online.health_report,
        budget=QueryBudget(max_results=1000),
    )
    folder = BackgroundFolder(online, service)

    # -- publish cost (fold + enrich + swap), and the bare swap --------
    publish_s = []
    views_by_day = {
        day: list(observatory.day(day).ixp_views.values())
        for day in range(days)
    }
    for day in range(days):
        online.update(day, views_by_day[day])
        t0 = time.perf_counter()
        service.publish(online.snapshot())
        publish_s.append(time.perf_counter() - t0)
    snapshot = service.handle.current()
    swap_s = []
    for _ in range(200):
        t0 = time.perf_counter()
        service.handle.publish(snapshot)
        swap_s.append(time.perf_counter() - t0)

    # -- engine parity: the served dark set IS the engine's ------------
    served = snapshot.dark_blocks
    if not np.array_equal(served, np.sort(online.current_prefixes())):
        raise SystemExit(
            f"{scale}: served dark set diverged from the online engine"
        )

    # -- point latency (and per-answer consistency) --------------------
    rng = np.random.default_rng(seed)
    probe_pool = np.concatenate([
        served,
        rng.integers(0, 2**24, size=max(1, point_queries // 4)),
    ])
    probes = rng.choice(probe_pool, size=point_queries)
    served_set = set(served.tolist())
    point_s = []
    for block in probes:
        t0 = time.perf_counter()
        answer = service.point(str(int(block)))
        point_s.append(time.perf_counter() - t0)
        if answer["dark"] != (int(block) in served_set):
            raise SystemExit(
                f"parity violation: service says dark={answer['dark']} "
                f"for block {int(block)}, snapshot says "
                f"{int(block) in served_set}"
            )

    # -- batch parity: serve a batch-built snapshot, sweep every block -
    window_views = [
        view
        for day in sorted(online.days_in_window())
        for view in views_by_day[day]
    ]
    batch = telescope.infer(window_views)
    batch_service = MetaTelescopeService()
    batch_service.publish(telescope.infer_snapshot(window_views))
    batch_dark = set(np.sort(batch.prefixes).tolist())
    sweep = np.union1d(
        batch_service.handle.current().blocks, np.asarray(probes)
    )
    for block in sweep:
        if batch_service.point(str(int(block)))["dark"] != (
            int(block) in batch_dark
        ):
            raise SystemExit(
                f"batch parity violation on block {int(block)}"
            )
    parity_batch = True

    # -- sustained qps: concurrent readers + a republishing writer -----
    duration = 2.0
    counts = [0, 0, 0, 0]
    stop = threading.Event()

    def reader(slot: int) -> None:
        local_rng = np.random.default_rng(seed + slot)
        while not stop.is_set():
            block = int(local_rng.choice(probe_pool))
            service.point(str(block))
            counts[slot] += 1

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(len(counts))
    ]
    for thread in threads:
        thread.start()
    t0 = time.perf_counter()
    republishes = 0
    while time.perf_counter() - t0 < duration:
        service.handle.publish(snapshot)
        republishes += 1
        time.sleep(0.01)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    qps = sum(counts) / elapsed

    # -- HTTP wire overhead --------------------------------------------
    daemon, stop_daemon = run_daemon_in_thread(service)
    http_s = []
    try:
        url = daemon.base_url
        for block in probes[: min(200, len(probes))]:
            t0 = time.perf_counter()
            with urllib.request.urlopen(
                f"{url}/v1/point?block={int(block)}", timeout=10
            ) as reply:
                json.loads(reply.read())
            http_s.append(time.perf_counter() - t0)
    finally:
        stop_daemon()

    return {
        "scale": scale,
        "days": days,
        "blocks": len(snapshot),
        "dark_blocks": len(served),
        "publish": {
            "seconds_per_publish": float(np.mean(publish_s)),
            "swap_us": _percentiles(swap_s),
        },
        "point": _percentiles(point_s),
        "http_point": _percentiles(http_s),
        "concurrent": {
            "readers": len(counts),
            "republishes": republishes,
            "queries_per_second": qps,
        },
        "parity": {
            "point_queries_checked": int(point_queries),
            "batch_sweep_blocks": int(len(sweep)),
            "batch_identical": parity_batch,
        },
    }


# ---------------------------------------------------------------------------
# Sustained-load harness: fleet scaling, torn-read detection, delta archive
# ---------------------------------------------------------------------------


def _latency_stats(samples_us: list[float]) -> dict[str, float]:
    arr = np.asarray(samples_us, dtype=np.float64)
    if arr.size == 0:
        return {"count": 0}
    return {
        "count": int(arr.size),
        "p50_us": float(np.percentile(arr, 50)),
        "p99_us": float(np.percentile(arr, 99)),
        "p999_us": float(np.percentile(arr, 99.9)),
        "mean_us": float(arr.mean()),
    }


def _folded_snapshot(scale: str, seed: int, days: int):
    """Fold a world and return its enriched (unstamped) snapshot."""
    world = _SCALES[scale](seed)
    observatory = Observatory(world)
    days = min(days, world.config.num_days)
    online = OnlineMetaTelescope(
        telescope=_telescope(world),
        window_days=min(3, days),
        min_stable_days=2,
    )
    for day in range(days):
        online.update(day, list(observatory.day(day).ixp_views.values()))
    return online.snapshot().enrich(
        pfx2as=world.datasets.pfx2as, geodb=world.datasets.geodb
    )


def _variants(snapshot, count: int, churn: float, seed: int) -> list:
    """A deterministic republish sequence: each step flips the verdicts
    of a ``churn`` fraction of dark/gray rows (dark <-> gray), keeping
    the block universe fixed — so every version has a known dark set
    and range totals are version-independent."""
    rng = np.random.default_rng(seed + 1)
    eligible = np.flatnonzero(
        (snapshot.verdicts == VERDICT_DARK)
        | (snapshot.verdicts == VERDICT_GRAY)
    )
    out = [snapshot]
    current = snapshot
    for _ in range(count - 1):
        flips = rng.choice(
            eligible,
            size=max(1, int(len(eligible) * churn)),
            replace=False,
        )
        verdicts = np.array(current.verdicts)
        verdicts[flips] = np.where(
            verdicts[flips] == VERDICT_DARK, VERDICT_GRAY, VERDICT_DARK
        )
        current = dataclasses.replace(current, verdicts=verdicts)
        out.append(current)
    return out


def _truth(variants: list, seed: int) -> dict:
    """The oracle the load workers validate against: per-version dark
    sets (version ``i+1`` is ``variants[i]`` — the supervisor stamps in
    publish order), probe blocks, and range windows with their
    version-independent totals."""
    base = variants[0]
    rng = np.random.default_rng(seed + 2)
    blocks = base.blocks
    present = rng.choice(blocks, size=min(150, len(blocks)), replace=False)
    block_set = set(int(b) for b in blocks)
    absent = [
        int(b) + 1 for b in present[:50] if int(b) + 1 not in block_set
    ]
    ranges = []
    range_total = {}
    for _ in range(8):
        i = int(rng.integers(0, max(1, len(blocks) - 60)))
        start = int(blocks[i])
        end = int(blocks[min(i + 50, len(blocks) - 1)])
        ranges.append([start, end])
        range_total[f"{start}:{end}"] = int(
            np.searchsorted(blocks, end, "right")
            - np.searchsorted(blocks, start, "left")
        )
    dark = {}
    dark_prefix = {}
    for i, variant in enumerate(variants):
        served = variant.blocks[variant.verdicts == VERDICT_DARK]
        dark[str(i + 1)] = [int(b) for b in served]
        dark_prefix[str(i + 1)] = [
            str(block_to_prefix(int(b))) for b in served
        ]
    return {
        "probes": sorted(set(int(b) for b in present) | set(absent)),
        "ranges": ranges,
        "range_total": range_total,
        "dark": dark,
        "dark_prefix": dark_prefix,
        "versions": list(range(1, len(variants) + 1)),
    }


def _load_worker(
    base_url: str,
    truth_path: str,
    seed: int,
    duration: float,
    offered_qps: float,
    out_path: str,
) -> None:
    """One spawned load-generator process (stdlib-only on the hot path).

    Open-loop when ``offered_qps > 0`` (paced sends with bounded
    lateness), saturation otherwise.  Every answer is checked against
    the truth for the version it *claims* to be from — under republish
    churn that is exactly the torn-read detector: a response mixing two
    snapshots cannot match any single version's truth.

    Queries ride one persistent keep-alive connection (reopened on
    error) so the generator measures the service, not per-request TCP
    setup; SO_REUSEPORT pins each connection to one fleet worker, which
    is exactly how real clients land."""
    import http.client
    import random

    truth = json.loads(pathlib.Path(truth_path).read_text())
    dark = {int(v): set(b) for v, b in truth["dark"].items()}
    dark_prefix = {
        int(v): set(p) for v, p in truth["dark_prefix"].items()
    }
    probes = truth["probes"]
    ranges = [tuple(r) for r in truth["ranges"]]
    range_total = {
        tuple(int(x) for x in key.split(":")): total
        for key, total in truth["range_total"].items()
    }
    versions = truth["versions"]

    rng = random.Random(seed)
    lat = {"point": [], "range": [], "diff": []}
    counts = {"point": 0, "range": 0, "diff": 0}
    violations: list[str] = []
    violation_count = 0

    def flag(what: str) -> None:
        nonlocal violation_count
        violation_count += 1
        if len(violations) < 10:
            violations.append(what)

    host, _, port = base_url.removeprefix("http://").partition(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=10)

    def get(path: str) -> dict:
        try:
            conn.request("GET", path)
            reply = conn.getresponse()
            return json.loads(reply.read())
        except Exception:
            conn.close()  # next request reconnects
            raise

    interval = 1.0 / offered_qps if offered_qps > 0 else 0.0
    next_send = time.monotonic()
    deadline = time.monotonic() + duration
    while time.monotonic() < deadline:
        if interval:
            now = time.monotonic()
            if next_send > now:
                time.sleep(next_send - now)
            # bounded lateness: never owe more than a second of backlog
            next_send = max(next_send + interval, time.monotonic() - 1.0)
        roll = rng.random()
        started = time.perf_counter()
        try:
            if roll < 0.6:
                kind = "point"
                block = rng.choice(probes)
                body = get(f"/v1/point?block={block}")
            elif roll < 0.85:
                kind = "range"
                start, end = rng.choice(ranges)
                body = get(f"/v1/range?start={start}&end={end}")
            else:
                kind = "diff"
                body = get(f"/v1/diff?since={rng.choice(versions)}")
        except Exception as error:  # noqa: BLE001 — a load error is data
            flag(f"transport: {error!r}")
            continue
        lat[kind].append((time.perf_counter() - started) * 1e6)
        counts[kind] += 1
        version = body.get("snapshot_version")
        if version not in dark:
            flag(f"unknown snapshot_version {version!r}")
            continue
        if kind == "point":
            if body["dark"] != (block in dark[version]):
                flag(
                    f"torn point: block {block} dark={body['dark']} "
                    f"at v{version}"
                )
        elif kind == "range":
            if body["total"] != range_total[(start, end)]:
                flag(
                    f"torn range [{start},{end}]: total {body['total']} "
                    f"!= {range_total[(start, end)]} at v{version}"
                )
            for row in body["rows"]:
                block = row["block"]
                if not (start <= block <= end) or row["dark"] != (
                    block in dark[version]
                ):
                    flag(
                        f"torn range row: block {block} at v{version}"
                    )
                    break
        elif body.get("base_retained"):
            base = body["base_version"]
            want_added = dark_prefix[version] - dark_prefix[base]
            want_removed = dark_prefix[base] - dark_prefix[version]
            if (
                set(body["added_dark"]) != want_added
                or set(body["removed_dark"]) != want_removed
            ):
                flag(f"torn diff: v{base} -> v{version}")
    pathlib.Path(out_path).write_text(
        json.dumps(
            {
                "counts": counts,
                "violation_count": violation_count,
                "violations": violations,
                "lat_us": lat,
            }
        )
    )


def _parity_sweep(
    base_url: str, truth: dict, connections: int = 24
) -> set[str]:
    """Hash one identical query script over many fresh connections.

    SO_REUSEPORT balances *connections* across fleet workers, so with
    several times more connections than workers every worker answers
    some of them — and every digest must be identical, byte for byte."""
    probes = truth["probes"][:20]
    start, end = truth["ranges"][0]
    digests = set()
    for _ in range(connections):
        digest = hashlib.sha256()
        for block in probes:
            with urllib.request.urlopen(
                f"{base_url}/v1/point?block={block}", timeout=10
            ) as reply:
                digest.update(reply.read())
        with urllib.request.urlopen(
            f"{base_url}/v1/range?start={start}&end={end}", timeout=10
        ) as reply:
            digest.update(reply.read())
        with urllib.request.urlopen(
            f"{base_url}/v1/diff?since=1", timeout=10
        ) as reply:
            digest.update(reply.read())
        digests.add(digest.hexdigest())
    return digests


def bench_process_scaling(
    snapshot,
    seed: int,
    counts: list[int],
    duration: float,
    load_workers: int,
    offered_qps: float,
) -> dict:
    """Sustained load against the fleet at each process count."""
    variants = _variants(snapshot, 6, 0.05, seed)
    final_version = len(variants)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    truth = _truth(variants, seed)
    truth_path = workdir / "truth.json"
    truth_path.write_text(json.dumps(truth))
    spawn = multiprocessing.get_context("spawn")

    runs = []
    qps_by_processes: dict[int, float] = {}
    try:
        for processes in counts:
            supervisor = FleetSupervisor(
                workdir / f"fleet-{processes}",
                processes=processes,
                poll_interval=0.02,
            )
            supervisor.publish(variants[0])
            supervisor.start()
            try:
                supervisor.wait_ready(60)
                outs = [
                    workdir / f"load-{processes}-{slot}.json"
                    for slot in range(load_workers)
                ]
                loaders = [
                    spawn.Process(
                        target=_load_worker,
                        args=(
                            supervisor.base_url,
                            str(truth_path),
                            seed + 17 * slot,
                            duration,
                            offered_qps,
                            str(out),
                        ),
                    )
                    for slot, out in enumerate(outs)
                ]
                for loader in loaders:
                    loader.start()
                # republish churn mid-run, spread over the first part
                for variant in variants[1:]:
                    time.sleep(duration / (len(variants) + 2))
                    supervisor.publish(variant)
                for loader in loaders:
                    loader.join(duration + 120)
                supervisor.wait_version(final_version, 30)
                digests = _parity_sweep(supervisor.base_url, truth)
            finally:
                supervisor.stop()

            reports = [json.loads(out.read_text()) for out in outs]
            total = sum(
                sum(report["counts"].values()) for report in reports
            )
            violations = sum(
                report["violation_count"] for report in reports
            )
            run = {
                "processes": processes,
                "load_workers": load_workers,
                "republishes": final_version - 1,
                "queries": total,
                "qps": total / duration,
                "violations": violations,
                "violation_samples": [
                    sample
                    for report in reports
                    for sample in report["violations"]
                ][:10],
                "parity_connections": 24,
                "parity_digests": len(digests),
                "latency": {
                    kind: _latency_stats(
                        [
                            value
                            for report in reports
                            for value in report["lat_us"][kind]
                        ]
                    )
                    for kind in ("point", "range", "diff")
                },
            }
            runs.append(run)
            qps_by_processes[processes] = run["qps"]
            if violations:
                raise SystemExit(
                    f"fleet x{processes}: {violations} torn/invalid "
                    f"answers under churn: {run['violation_samples']}"
                )
            if len(digests) != 1:
                raise SystemExit(
                    f"fleet x{processes}: workers diverged — "
                    f"{len(digests)} distinct parity digests"
                )
            print(
                f"fleet x{processes}: {run['qps']:,.0f} qps "
                f"({total:,} queries, {run['republishes']} republishes, "
                f"0 violations, parity ok), point p50 "
                f"{run['latency']['point'].get('p50_us', 0):.0f}us "
                f"p999 {run['latency']['point'].get('p999_us', 0):.0f}us"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    cpus = os.cpu_count() or 1
    gate = {
        "required_speedup_at_4": 2.5,
        "enforced": cpus >= 4
        and 4 in qps_by_processes
        and 1 in qps_by_processes,
    }
    if gate["enforced"]:
        gate["speedup_at_4"] = qps_by_processes[4] / qps_by_processes[1]
        if gate["speedup_at_4"] < gate["required_speedup_at_4"]:
            raise SystemExit(
                f"process scaling gate: 4-process fleet reached only "
                f"{gate['speedup_at_4']:.2f}x single-process qps "
                f"(need {gate['required_speedup_at_4']}x)"
            )
    return {
        "cpus": cpus,
        "duration_s": duration,
        "mode": "paced-open-loop" if offered_qps > 0 else "saturation",
        "offered_qps_per_worker": offered_qps,
        "runs": runs,
        "scaling_gate": gate,
    }


def bench_delta_archive(
    snapshot, seed: int, publishes: int, churn: float
) -> dict:
    """Delta-archive cost vs full snapshots over a republish sequence."""
    variants = _variants(snapshot, publishes, churn, seed + 5)
    handle = SnapshotHandle(history=publishes)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-delta-"))
    try:
        store = SnapshotDeltaStore(workdir / "store")
        fulls = workdir / "fulls"
        fulls.mkdir()
        stamped_all = []
        started = time.perf_counter()
        for variant in variants:
            stamped = handle.publish(variant)
            store.append(stamped)
            stamped_all.append(stamped)
        append_s = time.perf_counter() - started
        full_bytes = 0
        for stamped in stamped_all:
            path = fulls / f"v{stamped.version}.fpk"
            stamped.save(path)
            full_bytes += path.stat().st_size
        store_bytes = store.total_bytes()
        ratio = store_bytes / full_bytes
        retained = store.versions()
        reopened = SnapshotDeltaStore(workdir / "store")
        for stamped in stamped_all:
            if stamped.version not in retained:
                continue
            if not reopened.load(stamped.version).identical_to(stamped):
                raise SystemExit(
                    f"delta archive diverged at v{stamped.version}"
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    if ratio > 0.25:
        raise SystemExit(
            f"delta archive gate: store is {ratio:.1%} of full "
            f"snapshots (must be <= 25%)"
        )
    return {
        "publishes": publishes,
        "churn_fraction": churn,
        "blocks": len(snapshot),
        "store_bytes": store_bytes,
        "full_snapshot_bytes": full_bytes,
        "ratio": ratio,
        "versions_retained": len(retained),
        "reconstructed_identical": True,
        "append_seconds_total": append_s,
        "gate_max_ratio": 0.25,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", nargs="+", choices=sorted(_SCALES), default=["micro"]
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--point-queries", type=int, default=2000)
    parser.add_argument("--output", type=pathlib.Path, default=_OUTPUT)
    parser.add_argument(
        "--process-counts", type=int, nargs="+", default=None,
        metavar="N",
        help="fleet sizes for the scaling section (default: 1 2 4 "
        "trimmed to the host's cores)",
    )
    parser.add_argument(
        "--load-duration", type=float, default=2.0, metavar="SECONDS",
        help="sustained-load window per fleet size",
    )
    parser.add_argument(
        "--load-workers", type=int, default=3,
        help="spawned load-generator processes per run",
    )
    parser.add_argument(
        "--offered-qps", type=float, default=0.0,
        help="per-load-worker paced open-loop send rate "
        "(0 = unpaced saturation)",
    )
    parser.add_argument(
        "--publishes", type=int, default=30,
        help="republish sequence length for the delta-archive section",
    )
    parser.add_argument(
        "--churn", type=float, default=0.02,
        help="fraction of dark/gray rows flipped per republish in the "
        "delta-archive section",
    )
    parser.add_argument(
        "--skip-scaling", action="store_true",
        help="skip the multi-process fleet section",
    )
    parser.add_argument(
        "--skip-delta", action="store_true",
        help="skip the delta-archive section",
    )
    args = parser.parse_args(argv)

    records = []
    for scale in args.scales:
        record = bench_scale(scale, args.seed, args.days, args.point_queries)
        records.append(record)
        print(
            f"{scale}: {record['blocks']:,} blocks "
            f"({record['dark_blocks']:,} dark), "
            f"point p50 {record['point']['p50_us']:.0f}us "
            f"p99 {record['point']['p99_us']:.0f}us, "
            f"http p50 {record['http_point']['p50_us']:.0f}us, "
            f"swap p50 {record['publish']['swap_us']['p50_us']:.1f}us, "
            f"{record['concurrent']['queries_per_second']:,.0f} qps "
            f"under {record['concurrent']['republishes']} republishes"
        )
        if not record["parity"]["batch_identical"]:
            raise SystemExit(f"served set diverged from batch on {scale}")

    payload = {
        "benchmark": "service-latency-and-parity",
        "seed": args.seed,
        "worlds": records,
    }
    if not (args.skip_scaling and args.skip_delta):
        snapshot = _folded_snapshot(args.scales[0], args.seed, args.days)
        if not args.skip_scaling:
            counts = args.process_counts or [
                n for n in (1, 2, 4) if n <= max(2, os.cpu_count() or 1)
            ]
            payload["process_scaling"] = bench_process_scaling(
                snapshot,
                args.seed,
                counts,
                args.load_duration,
                args.load_workers,
                args.offered_qps,
            )
        if not args.skip_delta:
            delta = bench_delta_archive(
                snapshot, args.seed, args.publishes, args.churn
            )
            payload["delta_archive"] = delta
            print(
                f"delta archive: {args.publishes} publishes in "
                f"{delta['store_bytes']:,} bytes = {delta['ratio']:.1%} "
                f"of {delta['full_snapshot_bytes']:,} full-snapshot "
                f"bytes, {delta['versions_retained']} versions "
                f"reconstructed bit-identically"
            )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
