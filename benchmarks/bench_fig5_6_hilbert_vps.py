"""Figures 5 & 6 — Hilbert maps of large blocks per vantage point.

Paper shape: a mostly-dark legacy allocation (the /9-inside-a-/8
example, scaled to /13-inside-/12 here) appears as a dense dark region;
individual vantage points see complementary parts of it, and combining
all vantage points yields the most complete picture of a known
telescope's space (Figure 6c).
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.analysis.hilbert_viz import hilbert_grid, render_hilbert_ascii
from repro.net.ipv4 import Prefix


def _legacy_base(study) -> Prefix:
    """The big US-Education legacy allocation (the paper's /9 analog)."""
    for autonomous_system in study.world.registry:
        if autonomous_system.name.startswith("Legacy-US-0"):
            return autonomous_system.announced[0]
    raise AssertionError("legacy allocation missing")


def test_fig5_6_hilbert_per_vantage(study, benchmark):
    world = study.world
    legacy = _legacy_base(study)
    tus1 = world.telescopes["TUS1"]
    telescope_base = Prefix.from_ip(int(tus1.blocks[0]) << 8, 12)

    def collect():
        views = {}
        for vantage in ("CE1", "NA1", "All"):
            result = study.infer(vantage, days=world.config.num_days)
            views[vantage] = result.prefixes
        return views

    views = benchmark.pedantic(collect, rounds=1, iterations=1)

    sections = []
    coverage = {}
    for figure, base, reference in (
        ("Figure 5 (legacy allocation)", legacy, None),
        ("Figure 6 (known telescope)", telescope_base, tus1.blocks),
    ):
        for vantage in ("CE1", "NA1", "All"):
            hilbert = hilbert_grid(base, views[vantage], reference_blocks=reference)
            coverage[(figure, vantage)] = hilbert.dark_pixels()
            sections.append(
                f"--- {figure} — {vantage}: {hilbert.dark_pixels()} dark /24s ---\n"
                + render_hilbert_ascii(hilbert, max_side=32)
            )
    emit("fig5_6_hilbert_vps", "\n\n".join(sections))

    legacy_figure = "Figure 5 (legacy allocation)"
    telescope_figure = "Figure 6 (known telescope)"
    # The legacy block is visibly dark from every vantage point.
    for vantage in ("CE1", "NA1", "All"):
        assert coverage[(legacy_figure, vantage)] > 0
    # Combining vantage points recovers at least as much of the
    # telescope as the best single site (Figure 6c).
    best_single = max(
        coverage[(telescope_figure, "CE1")], coverage[(telescope_figure, "NA1")]
    )
    assert coverage[(telescope_figure, "All")] >= best_single * 0.8
    # TUS1 is a NA-visible telescope: NA1 sees it, CE1 does not.
    assert coverage[(telescope_figure, "NA1")] > 0
    inside_ce1 = np.isin(views["CE1"], tus1.blocks).sum()
    assert inside_ce1 == 0
