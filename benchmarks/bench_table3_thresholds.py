"""Table 3 — tuning the packet-size fingerprint on labelled ISP data.

Paper shape: the *average*-size feature at 44/46 bytes wins (F1 > 99 %,
FPR < 1.1 %); at 40 bytes the average feature collapses (FNR ~99 %)
because option-bearing SYNs push per-/24 means above 40; the *median*
feature suffers a much higher false-positive rate at 44/46 bytes
(ACK-heavy active space has a small median but a large mean).
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.core.thresholds import (
    block_size_features,
    evaluate_thresholds,
    isp_inbound_tables,
    label_isp_blocks,
)
from repro.reporting.tables import format_table


def test_table3_threshold_tuning(study, benchmark):
    world = study.world
    isp_views = [
        study.observatory.day(day).isp_view
        for day in range(world.config.num_days)
    ]

    def tune():
        labels = label_isp_blocks(
            isp_views, world.isp.blocks, world.config.active_min_week_packets
        )
        inbound = isp_inbound_tables(isp_views, world.isp.blocks)
        features = block_size_features(inbound, labels.receiving_blocks)
        return labels, evaluate_thresholds(features, labels)

    labels, rows = benchmark.pedantic(tune, rounds=1, iterations=1)
    emit(
        "table3_thresholds",
        format_table(
            ["Feature", "Threshold", "FPR %", "FNR %", "TPR %", "TNR %", "F1 %"],
            [
                (
                    r.feature,
                    r.threshold,
                    100 * r.false_positive_rate,
                    100 * r.false_negative_rate,
                    100 * r.true_positive_rate,
                    100 * r.true_negative_rate,
                    100 * r.f1_score,
                )
                for r in rows
            ],
            title=(
                "Table 3 — dark/active fingerprint tuning "
                f"({len(labels.dark_blocks)} dark / {len(labels.active_blocks)} "
                "active labelled /24s)"
            ),
        ),
    )
    by_key = {(r.feature, r.threshold): r for r in rows}
    best = by_key[("average", 44.0)]
    # The paper's winner: average @ 44 B with high F1 and low FPR.
    assert best.f1_score > 0.97
    assert best.false_positive_rate < 0.03
    # Average @ 40 B collapses (nearly all dark space misclassified).
    assert by_key[("average", 40.0)].false_negative_rate > 0.5
    # The median feature at 44 B has a clearly higher FPR than average.
    assert (
        by_key[("median", 44.0)].false_positive_rate
        > 3 * best.false_positive_rate
    )
    # Labelled population resembles the paper's ISP (dark majority).
    assert len(labels.dark_blocks) > len(labels.active_blocks)
