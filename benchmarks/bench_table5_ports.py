"""Table 5 — top-10 TCP ports at the operational telescopes.

Paper shape: ports 22, 80 and 443 appear in every telescope's top
list; telnet (23) leads where it is not blocked; 6379 (Redis) ranks
high at TUS1 and TEU2 but is absent from TEU1 (a regional campaign);
TEU1 misses 23/445 entirely (ingress-blocked).  The inferred
meta-telescope's top ports overlap the telescopes' top ports.
"""

from __future__ import annotations

from _common import emit
from repro.analysis.comparison import compare_port_statistics
from repro.analysis.ports import top_ports
from repro.reporting.tables import format_table
from repro.traffic.flows import FlowTable


def test_table5_top_ports(study, benchmark):
    week = study.world.config.num_days

    def collect():
        ranking = {}
        weekly_by_code = {}
        for code in study.world.telescopes:
            weekly = FlowTable.concat(
                [
                    study.observatory.day(day).telescope_views[code].flows
                    for day in range(week)
                ]
            )
            weekly_by_code[code] = weekly
            ranking[code] = top_ports(weekly, count=10)
        result = study.infer("All", days=1)
        views = study.views("All", days=1)
        captured = study.telescope.captured_traffic(views, result)
        ranking["meta-telescope"] = top_ports(captured, count=10)
        comparisons = {
            code: compare_port_statistics(captured, weekly, top_k=10)
            for code, weekly in weekly_by_code.items()
        }
        return ranking, comparisons

    ranking, comparisons = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [f"#{i + 1}"]
        + [
            ranking[code][i] if i < len(ranking[code]) else "-"
            for code in ("TUS1", "TEU1", "TEU2", "meta-telescope")
        ]
        for i in range(10)
    ]
    emit(
        "table5_ports",
        format_table(
            ["Rank", "TUS1", "TEU1", "TEU2", "Meta-telescope"],
            rows,
            title="Table 5 — top 10 TCP destination ports (week)",
        )
        + "\n\nmeta-telescope vs telescope port statistics "
        "(paper: 'perfect overlap for the top ports'):\n"
        + format_table(
            ["Telescope", "top-10 overlap", "Spearman rho", "L1 distance"],
            [
                (code, c.overlap, c.spearman_rho, c.l1_distance)
                for code, c in comparisons.items()
            ],
        ),
    )
    # Ports 22/80/443 in every telescope's top-10.
    for code in ("TUS1", "TEU1", "TEU2"):
        assert {22, 80, 443} <= set(ranking[code])
    # Telnet leads where not blocked; TEU1 never sees 23 or 445.
    assert ranking["TUS1"][0] == 23
    assert ranking["TEU2"][0] == 23
    assert 23 not in ranking["TEU1"]
    assert 445 not in ranking["TEU1"]
    # The regional Redis campaign: high at TUS1/TEU2, absent at TEU1.
    assert 6379 in ranking["TUS1"]
    assert 6379 in ranking["TEU2"]
    assert 6379 not in ranking["TEU1"]
    # The meta-telescope's core ports match the telescopes'.
    assert {23, 22, 80, 443, 8080} <= set(ranking["meta-telescope"])
    # Quantified: strong rank agreement with the unblocked telescopes.
    assert comparisons["TUS1"].overlap >= 7
    assert comparisons["TUS1"].spearman_rho > 0.5
    assert comparisons["TEU2"].overlap >= 6
