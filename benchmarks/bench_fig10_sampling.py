"""Figure 10 — effect of sub-sampling the flow data.

Paper shape: (a) moderate sub-sampling first *increases* the number of
inferred prefixes (spoofed pollution thins out), then the count
collapses toward zero at factors beyond ~100-180; (b) the share of
false positives grows monotonically (in trend) as sampling deepens.
"""

from __future__ import annotations

from _common import emit
from repro.analysis.sampling_study import sampling_sweep
from repro.reporting.tables import format_table

FACTORS = (1, 2, 5, 10, 30, 100, 300, 1000)


def test_fig10_sampling_effect(study, benchmark):
    # The paper sub-samples its full (spoofing-laden) data set; the
    # hump of Figure 10a — inference first *rising* under moderate
    # sub-sampling — comes from spoofed pollution thinning out faster
    # than scan coverage degrades, which needs the week-long window
    # where pollution dominates.
    views = study.views("All", days=study.world.config.num_days)

    def collect():
        return sampling_sweep(
            views,
            study.telescope,
            study.world.index,
            factors=FACTORS,
            seed=study.world.config.seed,
        )

    points = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(
        "fig10_sampling",
        format_table(
            ["Factor", "#Prefixes", "FP share", "Sampled pkts", "Sampled flows"],
            [
                [p.factor, p.inferred, p.false_positive_share, p.sampled_packets,
                 p.sampled_flows]
                for p in points
            ],
            title="Figure 10 — inference on sub-sampled data (All IXPs, week)",
        ),
    )
    by_factor = {p.factor: p for p in points}
    # (a) mild sub-sampling *increases* the inference (spoofed
    # pollution thins out faster than scan coverage degrades) ...
    assert max(p.inferred for p in points[1:5]) > by_factor[1].inferred
    # ... then the inference collapses at deep factors.
    peak = max(p.inferred for p in points)
    assert by_factor[1000].inferred < 0.2 * peak
    assert by_factor[1000].sampled_packets < by_factor[1].sampled_packets / 500
    # (b) false positives grow with deep sub-sampling (trend).
    shallow = by_factor[1].false_positive_share
    deep = max(
        by_factor[100].false_positive_share, by_factor[300].false_positive_share
    )
    assert deep >= shallow
