"""Figure 9 — cumulative-day inference with and without the spoofing
tolerance.

Paper shape: without the tolerance the count collapses as days
accumulate (350k -> 4k over a week — a ~99 % loss); with the
unrouted-space tolerance the day-one count is much higher and the
curve stays of the same order across the week.
"""

from __future__ import annotations

from _common import emit
from repro.reporting.tables import format_table


def test_fig9_spoofing_effect(study, benchmark):
    week = study.world.config.num_days

    def collect():
        series = {"plain": [], "tolerance": []}
        for days in range(1, week + 1):
            series["plain"].append(
                study.infer("All", days=days, tolerance=False, refine=False)
                .pipeline.num_dark()
            )
            series["tolerance"].append(
                study.infer("All", days=days, tolerance=True, refine=False)
                .pipeline.num_dark()
            )
        return series

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(
        "fig9_spoofing",
        format_table(
            ["Window (days)", "No tolerance", "With tolerance"],
            [
                [days + 1, series["plain"][days], series["tolerance"][days]]
                for days in range(week)
            ],
            title="Figure 9 — cumulative-day inference vs spoofing (All IXPs)",
        ),
    )
    plain, tolerant = series["plain"], series["tolerance"]
    # Without tolerance the week destroys almost everything.
    assert plain[-1] < 0.12 * plain[0]
    # The tolerance recovers the bulk of it on every window length.
    for days in range(week):
        assert tolerant[days] > plain[days]
    assert tolerant[-1] > 0.4 * tolerant[0]
    # Day one: tolerance already roughly doubles the count.
    assert tolerant[0] > 1.5 * plain[0]
