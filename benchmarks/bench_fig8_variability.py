"""Figure 8 — day-to-day variability of inferred prefixes.

Paper shape: independent per-day inferences fluctuate strongly (up to
2x between days at one vantage point) and every vantage set infers
*more* prefixes on the weekend (quiet enterprise/education space).
"""

from __future__ import annotations

import numpy as np

from _common import emit
from repro.analysis.variability import daily_series
from repro.reporting.tables import format_table


def test_fig8_daily_variability(study, benchmark):
    def collect():
        series = {}
        for vantage in ("CE1", "NA1", "All"):
            series[vantage] = daily_series(
                vantage,
                study.views_by_day(vantage),
                study.telescope,
                use_spoofing_tolerance=True,
            )
        return series

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    days = series["All"].days
    emit(
        "fig8_variability",
        format_table(
            ["Day", *series],
            [
                [day, *(series[vantage].counts[i] for vantage in series)]
                for i, day in enumerate(days)
            ],
            title="Figure 8 — independently inferred prefixes per day "
            "(days 5-6 are the weekend)",
        ),
    )
    for vantage, line in series.items():
        counts = np.array(line.counts)
        # Day-to-day variability is substantial.
        assert counts.max() > counts.min() * 1.05
        # The weekend bump.
        assert line.weekend_uplift() > 1.0, vantage
    # The pooled set dominates single sites every day.
    for i in range(len(days)):
        assert series["All"].counts[i] >= series["CE1"].counts[i]
