"""Robustness — adversarial scenario catalog vs its degradation envelopes.

Runs the full standard catalog (padded-evasive scanners, targeted
spoofing floods, an epidemic outbreak, a mid-campaign route leak and a
flash re-activation) through both engine paths — batch/parallel with
``workers >= 2`` and the online operator under the ``carry`` policy —
and scores every scenario differentially against the clean baseline.
The bench is the regression gate at benchmark cadence: every metric
delta must stay inside its expected-degradation envelope, and the
targeted scenarios must keep their ground-truth target blocks off the
serving list (miss rate at the envelope's lower bound or above).

A second pass folds the canonical fault-injection composition from
``repro.faults`` on top of every scenario, proving the envelopes hold
even on degraded feeds.  Everything is seeded; two runs produce
identical verdicts.
"""

from __future__ import annotations

from _common import emit
from repro.reporting.tables import format_table
from repro.robustness import (
    EvaluationSettings,
    evaluate_catalog,
    standard_catalog,
)
from repro.world.config import micro_config

SEED = 7


def _settings(compose_faults: bool = False) -> EvaluationSettings:
    return EvaluationSettings(
        days=3, workers=2, compose_faults=compose_faults, fault_seed=SEED
    )


def _rows(verdict):
    rows = []
    for scenario in verdict.verdicts:
        by_path = {score.path: score for score in scenario.observed}
        for path in ("parallel", "online"):
            score = by_path[path]
            checks = [c for c in scenario.checks if c.path == path]
            rows.append(
                (
                    scenario.scenario,
                    path,
                    score.serving,
                    f"{score.fpr:.3f}",
                    f"{score.fnr:.3f}",
                    f"{score.coverage:.3f}",
                    "-" if score.target_miss_rate is None
                    else f"{score.target_miss_rate:.3f}",
                    "ok" if all(c.ok for c in checks) else "VIOLATION",
                )
            )
    return rows


def test_bench_scenarios(benchmark):
    config = micro_config(SEED)
    catalog = standard_catalog(config)

    def run():
        clean = evaluate_catalog(catalog, config, _settings())
        faulted = evaluate_catalog(
            catalog, config, _settings(compose_faults=True)
        )
        return clean, faulted

    clean, faulted = benchmark.pedantic(run, rounds=1, iterations=1)

    header = ["scenario", "path", "serving", "fpr", "fnr", "coverage",
              "miss", "verdict"]
    emit(
        "scenarios_envelopes",
        format_table(
            header, _rows(clean),
            title="Adversarial catalog vs degradation envelopes "
            "(clean feeds)",
        )
        + "\n"
        + format_table(
            header, _rows(faulted),
            title="Adversarial catalog vs degradation envelopes "
            "(canonical fault composition on top)",
        ),
    )

    # The gate: every scenario within its envelope, on both passes.
    assert clean.ok(), [
        c.describe() for v in clean.verdicts for c in v.violations()
    ]
    assert faulted.ok(), [
        c.describe() for v in faulted.verdicts for c in v.violations()
    ]
    assert len(clean.verdicts) == len(catalog) >= 5

    # Targeted scenarios hold their targets off the serving list even
    # while the attack runs — the property the gate protects.
    for verdict in clean.verdicts:
        for score in verdict.observed:
            if score.target_miss_rate is not None:
                assert score.target_miss_rate >= 0.7, (
                    verdict.scenario, score.path, score.target_miss_rate
                )

    # Determinism: re-evaluating one scenario reproduces the verdict.
    scenario = catalog[0]
    first = evaluate_catalog([scenario], config, _settings())
    second = evaluate_catalog([scenario], config, _settings())
    assert first.to_json() == second.to_json()
