"""Ablation — the weekend effect's mechanism (paper Section 7.1).

The paper *hypothesises* that the weekend surge of inferred prefixes
comes from enterprise/education networks going quiet outside working
hours.  The simulator can test the hypothesis directly: rebuild the
same world with flat weekday profiles (quiet space stays equally
active on weekends) and the surge must disappear.

Runs at the small scale (it needs a second, counterfactual world).
"""

from __future__ import annotations

from _common import emit
from repro.analysis.variability import daily_series
from repro.core.metatelescope import MetaTelescope
from repro.core.pipeline import PipelineConfig
from repro.reporting.tables import format_table
from repro.world.builder import build_world
from repro.world.config import small_config
from repro.world.observe import Observatory


def _series(world) -> "daily_series":
    observatory = Observatory(world)
    telescope = MetaTelescope(
        collector=world.collector,
        unrouted_baseline=world.unrouted_baseline_blocks,
        config=PipelineConfig(
            volume_threshold_pkts_day=world.config.volume_threshold_pkts_day
        ),
    )
    views_by_day = {
        day: list(observatory.day(day).ixp_views.values())
        for day in range(world.config.num_days)
    }
    return daily_series("All", views_by_day, telescope,
                        use_spoofing_tolerance=True)


def test_ablation_weekend_mechanism(benchmark):
    def run():
        factual = build_world(small_config(seed=7))
        counterfactual = build_world(
            small_config(seed=7).scaled(weekend_factor_quiet=1.0)
        )
        return _series(factual), _series(counterfactual)

    factual, counterfactual = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_weekend",
        format_table(
            ["Day", "quiet weekends (paper world)", "flat weekends"],
            [
                [day, factual.counts[i], counterfactual.counts[i]]
                for i, day in enumerate(factual.days)
            ],
            title="Ablation — weekend effect (small scale)",
        )
        + f"\nweekend uplift: factual {factual.weekend_uplift():.3f}x, "
        f"counterfactual {counterfactual.weekend_uplift():.3f}x",
    )
    # Quiet weekends produce the surge; flat weekends do not.
    assert factual.weekend_uplift() > 1.0
    assert counterfactual.weekend_uplift() < factual.weekend_uplift()
