"""Figures 12, 19, 20 — top destination ports per network type
(globally, then restricted to EU and NA).

Paper shape: port 23 is again the most popular in every class; port 80
is relatively more popular inside data-center and education space than
inside ISP space; 5038 concentrates in data centers; 3389 is stronger
in ISP/enterprise space.
"""

from __future__ import annotations

from _common import emit
from repro.analysis.ports import bean_matrix, port_activity_by_group, top_ports_per_group
from repro.reporting.beanplot import render_bean_rows


def _activity_for(study, captured, continent_filter=None):
    blocks = captured.dst_blocks()
    types = study.world.index.as_types_of(blocks)
    continents = study.world.index.continents_of(blocks)
    group_of_block = {}
    for block, as_type, continent in zip(blocks, types, continents):
        if as_type is None:
            continue
        if continent_filter is not None and continent != continent_filter:
            continue
        group_of_block[int(block)] = as_type.value
    return port_activity_by_group(captured, group_of_block)


def test_fig12_ports_by_type(study, benchmark):
    def collect():
        week = study.world.config.num_days
        result = study.infer("All", days=week)
        views = study.views("All", days=week)
        captured = study.telescope.captured_traffic(views, result)
        return {
            "global": _activity_for(study, captured),
            "EU": _activity_for(study, captured, "EU"),
            "NA": _activity_for(study, captured, "NA"),
        }

    activities = benchmark.pedantic(collect, rounds=1, iterations=1)
    sections = []
    for scope, label in (
        ("global", "Figure 12 — per network type (global)"),
        ("EU", "Figure 19 — per network type, EU destinations"),
        ("NA", "Figure 20 — per network type, NA destinations"),
    ):
        activity = activities[scope]
        ports = top_ports_per_group(activity, per_group=8)[:12]
        groups, matrix = bean_matrix(activity, ports)
        sections.append(label + "\n" + render_bean_rows(ports, groups, matrix))
    emit("fig12_ports_nettype", "\n\n".join(sections))

    activity = activities["global"]
    # Port 23 tops every network class (small classes may show
    # sampling noise, hence the tiny slack for data centers).
    for group in activity:
        assert activity[group].rank_of(23) <= 2, group
    assert activity["ISP"].rank_of(23) == 1
    # Port 80 relatively stronger in DC/education than in ISP space.
    assert activity["Data Center"].share_of(80) > activity["ISP"].share_of(80)
    assert activity["Education"].share_of(80) > activity["ISP"].share_of(80)
    # 5038 concentrates in data centers.
    assert activity["Data Center"].share_of(5038) > activity["ISP"].share_of(5038)
    # 3389 is stronger in ISP/enterprise space than in data centers.
    assert activity["ISP"].share_of(3389) > activity["Data Center"].share_of(3389)
