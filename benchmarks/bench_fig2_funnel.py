"""Figure 2 — the inference-pipeline funnel (all IXPs, one day).

Paper shape (6.2M observed): the TCP filter trims ~5 %, the
average-size filter ~11 %, source/reserved/routed each well under 2 %,
the volume filter ~2 %; of the classified blocks, graynets dominate,
followed by unclean darknets, with clean darknets the smallest class.
"""

from __future__ import annotations

from _common import emit
from repro.reporting.tables import format_table


def test_fig2_pipeline_funnel(study, benchmark):
    result = benchmark.pedantic(
        lambda: study.infer("All", days=1, refine=False), rounds=1, iterations=1
    )
    funnel = result.pipeline.funnel
    rows = list(funnel.as_rows())
    rows.append(("classified: dark", len(result.pipeline.dark_blocks)))
    rows.append(("classified: unclean", len(result.pipeline.unclean_blocks)))
    rows.append(("classified: gray", len(result.pipeline.gray_blocks)))
    emit(
        "fig2_funnel",
        format_table(
            ["Step", "#/24 blocks"],
            rows,
            title="Figure 2 — pipeline funnel (all IXPs, day 0)",
        ),
    )
    # Strictly decreasing funnel with small relative drops after the
    # size filter.
    counts = [c for _, c in funnel.as_rows()]
    assert counts == sorted(counts, reverse=True)
    assert funnel.after_tcp > 0.85 * funnel.observed
    assert funnel.after_source_unseen > 0.9 * funnel.after_avg_size
    assert funnel.after_volume > 0.9 * funnel.after_routed
    # Gray (lightly-used, source-sighted) space is a major class.
    # (The paper's gray:dark ratio is ~10:1; our dark ground truth is
    # relatively larger, so the ratio is smaller — see EXPERIMENTS.md.)
    assert len(result.pipeline.gray_blocks) > len(result.pipeline.dark_blocks) * 0.3
    assert len(result.pipeline.unclean_blocks) > 0
    # Everything classified equals the funnel's final survivors.
    classified = (
        len(result.pipeline.dark_blocks)
        + len(result.pipeline.unclean_blocks)
        + len(result.pipeline.gray_blocks)
    )
    assert classified == funnel.after_volume
